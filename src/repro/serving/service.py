"""The serving service: one store, versioned snapshots, guarded refresh.

A :class:`ServingService` ties the layers together:

* queries run against the :class:`~repro.serving.snapshots.SnapshotManager`'s
  current version, pinned for the duration of the query — concurrent
  refreshes never perturb an in-flight read;
* :meth:`ServingService.refresh` advances the live store (synchronize,
  optionally sharded, optionally durable-snapshot) and publishes the
  next version — all behind a :class:`~repro.serving.breaker.CircuitBreaker`;
* any refresh failure (injected ENOSPC on the journal, a torn-write
  failpoint in the durable snapshot, a crashed sync) leaves the
  published version untouched: the service degrades to stale read-only
  answers instead of dying, and recovers automatically once the breaker
  re-closes and a refresh succeeds.

The live store may be *ahead* of the published snapshot after a partial
failure (synchronize committed, durable snapshot failed).  That is safe
under MVCC — readers only ever see published versions — and the next
successful refresh publishes the reconciled state (synchronize is
idempotent at a fixed time).
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable, Mapping

from ..core.mo import MultidimensionalObject
from ..engine.faults import PASSIVE, FaultInjector
from ..engine.queryproc import SubcubeQuery
from ..engine.store import SubcubeStore
from ..errors import ReproError, ServingError
from ..obs import metrics as obs_metrics
from . import telemetry
from .breaker import CircuitBreaker
from .snapshots import SnapshotManager, StoreSnapshot

_REFRESH_HELP = "Refresh attempts, by outcome (ok|failed|rejected)."


class ServingService:
    """Snapshot-isolated reads over a live, refreshing store."""

    def __init__(
        self,
        store: SubcubeStore,
        *,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
        executor: "object | None" = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.store = store
        self.metrics = store.metrics
        self.faults = (
            faults
            if faults is not None
            else getattr(store, "_faults", PASSIVE)
        )
        self.snapshots = SnapshotManager(self.metrics)
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(
                metrics=self.metrics,
                **({"clock": clock} if clock is not None else {}),
            )
        )
        self._executor = executor
        self._last_refresh_error: str | None = None
        self.snapshots.publish(store)

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        return self.snapshots.version

    @property
    def degraded(self) -> bool:
        """Whether reads are currently stale-snapshot-only (breaker not
        closed, so refreshes are suspended or probing)."""
        return self.breaker.state != "closed"

    def acquire(self) -> StoreSnapshot:
        return self.snapshots.acquire()

    def release(self, snapshot: StoreSnapshot) -> None:
        self.snapshots.release(snapshot)

    def query(
        self, query: SubcubeQuery, now: _dt.date
    ) -> tuple[MultidimensionalObject, StoreSnapshot, bool]:
        """Evaluate *query* against a pinned snapshot.

        Returns ``(result, snapshot, degraded)``; *degraded* marks an
        answer served while the breaker is open — correct as of the
        snapshot's sync time, but possibly stale.
        """
        degraded = self.degraded
        if degraded:
            self.metrics.counter(
                telemetry.DEGRADED,
                help="Responses served stale while the breaker was open.",
            ).inc()
        with self.snapshots.pinned() as snapshot:
            result = snapshot.query(query, now)
        return result, snapshot, degraded

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------

    def refresh(self, now: _dt.date) -> StoreSnapshot | None:
        """Synchronize the live store to *now* and publish version N+1.

        Returns the new snapshot, or ``None`` when the breaker rejected
        the attempt (service stays on version N).  A failed attempt
        records a breaker failure, keeps version N published, and
        re-raises nothing — degradation, not death.
        """
        if not self.breaker.allow():
            self.metrics.counter(
                telemetry.REFRESHES, {"status": "rejected"},
                help=_REFRESH_HELP,
            ).inc()
            return None
        try:
            self.faults.hit("sync.slow")
            self.store.synchronize(now, executor=self._executor)
            durable_snapshot = getattr(self.store, "snapshot", None)
            if callable(durable_snapshot):
                durable_snapshot()
        except (ReproError, OSError) as exc:
            self.breaker.record_failure()
            self._last_refresh_error = f"{type(exc).__name__}: {exc}"
            self.metrics.counter(
                telemetry.REFRESHES, {"status": "failed"}, help=_REFRESH_HELP
            ).inc()
            return None
        snapshot = self.snapshots.publish(self.store)
        self.breaker.record_success()
        self._last_refresh_error = None
        self.metrics.counter(
            telemetry.REFRESHES, {"status": "ok"}, help=_REFRESH_HELP
        ).inc()
        return snapshot

    def require_refresh(self, now: _dt.date) -> StoreSnapshot:
        """:meth:`refresh`, but a rejection/failure raises (CLI paths)."""
        snapshot = self.refresh(now)
        if snapshot is None:
            detail = self._last_refresh_error or "breaker open"
            raise ServingError(f"refresh to {now} did not publish: {detail}")
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def status(self) -> Mapping[str, object]:
        current = self.snapshots.current()
        return {
            "version": self.version,
            "fingerprint": current.fingerprint if current else None,
            "last_sync": (
                current.last_sync.isoformat()
                if current and current.last_sync
                else None
            ),
            "facts": current.total_facts() if current else 0,
            "breaker": self.breaker.state,
            "degraded": self.degraded,
            "live_versions": self.snapshots.live_versions(),
            "last_refresh_error": self._last_refresh_error,
        }
