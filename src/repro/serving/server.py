"""An asyncio JSON-line query server over a :class:`ServingService`.

Protocol: one JSON object per line in each direction (newline-delimited
JSON over TCP).  Requests carry an ``op`` (``ping``, ``version``,
``query``, ``sync``, ``stats``, ``shutdown``) and an optional ``id``
echoed back verbatim.  Responses are ``{"ok": true, ...}`` or
``{"ok": false, "error": {"code": ..., "reason": ...}}`` with
HTTP-flavoured codes:

* ``429`` — admission queue full (backpressure); carries
  ``retry_after_ms`` so well-behaved clients back off instead of
  hammering;
* ``504`` — the per-request deadline elapsed before the handler
  finished (the work is cancelled, the connection survives);
* ``400`` — malformed request (bad JSON, unknown op, bad field);
* ``500`` — the handler crashed (including the ``serve.handler``
  failpoint); the server logs the failure into its metrics and keeps
  serving.

CPU-bound query work runs in worker threads (``asyncio.to_thread``), so
a stalling query — e.g. the ``serve.slow`` failpoint — never blocks the
event loop, and deadline cancellation stays responsive.
"""

from __future__ import annotations

import asyncio
import datetime as _dt
import json
import time
import warnings
from dataclasses import dataclass
from typing import Mapping

from .. import sanitize
from ..core.hierarchy import TOP
from ..engine.queryproc import SubcubeQuery
from ..errors import ReproError
from ..query.aggregation import AggregationApproach
from ..query.algebra import mo_rows
from ..query.compare import Approach
from . import telemetry
from .service import ServingService

_REJECT_HELP = "Requests turned away, by reason."
_REQUEST_HELP = "Requests finished, by op and terminal status."


@dataclass(frozen=True)
class ServerConfig:
    """Tunables of one :class:`QueryServer`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick (tests); real deploys pin one
    #: Admitted-but-unfinished requests beyond which new ones get 429.
    max_queue: int = 64
    #: Requests executing concurrently (the rest wait in the queue).
    max_inflight: int = 8
    #: Default per-request deadline; requests may override (capped here).
    deadline_seconds: float = 5.0
    #: Hint sent with 429 responses.
    retry_after_ms: int = 50


class QueryServer:
    """Serve snapshot-isolated queries with deadlines and backpressure."""

    def __init__(
        self, service: ServingService, config: ServerConfig | None = None
    ) -> None:
        self.service = service
        self.config = config if config is not None else ServerConfig()
        self.metrics = service.metrics
        self._server: asyncio.AbstractServer | None = None
        self._block_monitor: sanitize.LoopBlockMonitor | None = None
        self._admitted = 0
        self._slots: asyncio.Semaphore | None = None
        self._closing = asyncio.Event()
        self._connections: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — useful when the config port was 0."""
        if self._server is None or not self._server.sockets:
            raise ReproError("server is not started")
        host, port = self._server.sockets[0].getsockname()[:2]
        return str(host), int(port)

    async def start(self) -> None:
        self._slots = asyncio.Semaphore(self.config.max_inflight)
        self._closing = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        if sanitize.enabled(sanitize.BLOCK):
            self._block_monitor = sanitize.LoopBlockMonitor(
                asyncio.get_running_loop(), on_stall=self._note_loop_stall
            )
            self._block_monitor.start()

    def _note_loop_stall(self, elapsed: float) -> None:
        """The block sanitizer caught a handler holding the event loop."""
        self.metrics.counter(
            telemetry.LOOP_STALLS,
            help="Event-loop stalls past the block-sanitizer threshold.",
        ).inc()
        worst = self.metrics.gauge(
            telemetry.LOOP_STALL_SECONDS,
            help="Worst event-loop stall observed, seconds.",
        )
        worst.set(max(worst.value, elapsed))
        warnings.warn(
            f"serving event loop blocked for {elapsed * 1000:.1f} ms; "
            "blocking work belongs in asyncio.to_thread",
            sanitize.EventLoopBlockedWarning,
            stacklevel=2,
        )

    async def stop(self) -> None:
        if self._block_monitor is not None:
            self._block_monitor.stop()
            self._block_monitor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(
                *self._connections, return_exceptions=True
            )
        self._closing.set()

    async def serve_until_closed(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op) is called."""
        await self._closing.wait()
        await self.stop()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
            task.add_done_callback(self._connections.discard)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(
                    json.dumps(response, sort_keys=True).encode("utf-8")
                    + b"\n"
                )
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self._closing.set()
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-write; nothing to clean up
        except asyncio.CancelledError:
            pass  # server shutdown drains handlers; exit cleanly
        finally:
            writer.close()
            try:
                await asyncio.wait_for(writer.wait_closed(), timeout=1.0)
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.TimeoutError,
                asyncio.CancelledError,
            ):
                pass

    async def _handle_line(self, line: bytes) -> dict:
        started = time.perf_counter()
        try:
            request = json.loads(line)
            if not isinstance(request, dict):
                raise ValueError("request must be a JSON object")
        except ValueError as exc:
            return self._error(
                None, None, 400, f"bad request line: {exc}", started
            )
        request_id = request.get("id")
        op = request.get("op")
        if op not in ("ping", "version", "query", "sync", "stats", "shutdown"):
            return self._error(
                request_id, None, 400, f"unknown op {op!r}", started
            )

        # Backpressure: admission is a plain counter check — cheap, and
        # rejected requests never touch the execution semaphore.
        if self._admitted >= self.config.max_queue:
            self.metrics.counter(
                telemetry.REJECTED, {"reason": "overload"}, help=_REJECT_HELP
            ).inc()
            response = self._error(
                request_id, op, 429, "admission queue full", started
            )
            response["retry_after_ms"] = self.config.retry_after_ms
            return response

        deadline = self._deadline_of(request)
        self._admitted += 1
        self.metrics.gauge(
            telemetry.QUEUE_DEPTH, help="Requests admitted, not yet finished."
        ).set(self._admitted)
        try:
            return await asyncio.wait_for(
                self._execute(request_id, op, request, started),
                timeout=deadline,
            )
        except asyncio.TimeoutError:
            self.metrics.counter(
                telemetry.REJECTED, {"reason": "deadline"}, help=_REJECT_HELP
            ).inc()
            return self._error(
                request_id, op,
                504, f"deadline of {deadline}s exceeded", started,
            )
        finally:
            self._admitted -= 1
            self.metrics.gauge(
                telemetry.QUEUE_DEPTH,
                help="Requests admitted, not yet finished.",
            ).set(self._admitted)

    def _deadline_of(self, request: Mapping) -> float:
        deadline = self.config.deadline_seconds
        requested = request.get("deadline_ms")
        if isinstance(requested, (int, float)) and requested > 0:
            deadline = min(deadline, float(requested) / 1000.0)
        return deadline

    async def _execute(
        self, request_id: object, op: str, request: Mapping, started: float
    ) -> dict:
        assert self._slots is not None
        async with self._slots:
            inflight = self.metrics.gauge(
                telemetry.INFLIGHT, help="Requests executing right now."
            )
            inflight.inc()
            try:
                body = await asyncio.to_thread(
                    self._dispatch, op, dict(request)
                )
            except ReproError as exc:
                self.metrics.counter(
                    telemetry.REJECTED,
                    {"reason": "handler"},
                    help=_REJECT_HELP,
                ).inc()
                return self._error(
                    request_id, op,
                    500, f"{type(exc).__name__}: {exc}", started,
                )
            except (ValueError, KeyError, TypeError) as exc:
                return self._error(request_id, op, 400, str(exc), started)
            finally:
                inflight.dec()
        response = {"ok": True, "op": op, **body}
        if request_id is not None:
            response["id"] = request_id
        self._finish(op, "ok", started)
        return response

    def _error(
        self,
        request_id: object,
        op: str | None,
        code: int,
        reason: str,
        started: float,
    ) -> dict:
        response: dict = {
            "ok": False,
            "error": {"code": code, "reason": reason},
        }
        if op is not None:
            response["op"] = op
        if request_id is not None:
            response["id"] = request_id
        status = {429: "rejected", 504: "deadline", 500: "error"}.get(
            code, "bad_request"
        )
        self._finish(op or "unknown", status, started)
        return response

    def _finish(self, op: str, status: str, started: float) -> None:
        self.metrics.counter(
            telemetry.REQUESTS, {"op": op, "status": status},
            help=_REQUEST_HELP,
        ).inc()
        telemetry.request_histogram(self.metrics).observe(
            time.perf_counter() - started
        )

    # ------------------------------------------------------------------
    # Request handlers (run in worker threads)
    # ------------------------------------------------------------------

    def _dispatch(self, op: str, request: dict) -> dict:
        self.service.faults.hit("serve.slow")
        self.service.faults.hit("serve.handler")
        if op == "ping":
            return {"pong": True}
        if op == "version":
            return dict(self.service.status())
        if op == "stats":
            return {"metrics": self.metrics.snapshot()}
        if op == "shutdown":
            return {"stopping": True}
        if op == "sync":
            return self._handle_sync(request)
        return self._handle_query(request)

    def _handle_sync(self, request: dict) -> dict:
        now = _parse_date(request.get("now"))
        snapshot = self.service.refresh(now)
        if snapshot is None:
            return {
                "published": False,
                "version": self.service.version,
                "degraded": self.service.degraded,
                "breaker": self.service.breaker.state,
            }
        return {
            "published": True,
            "version": snapshot.version,
            "fingerprint": snapshot.fingerprint,
            "degraded": False,
            "breaker": self.service.breaker.state,
        }

    def _handle_query(self, request: dict) -> dict:
        now = _parse_date(request.get("now"))
        query = self._parse_query(request)
        result, snapshot, degraded = self.service.query(query, now)
        return {
            "version": snapshot.version,
            "fingerprint": snapshot.fingerprint,
            "degraded": degraded,
            "rows": mo_rows(result),
        }

    def _parse_query(self, request: Mapping) -> SubcubeQuery:
        predicate = request.get("predicate")
        if predicate is not None and not isinstance(predicate, str):
            raise ValueError("'predicate' must be a string or null")
        granularity = dict(request.get("granularity") or {})
        schema = self.service.store.bottom_cube.mo.schema
        for name in schema.dimension_names:
            granularity.setdefault(name, TOP)
        approach = Approach(request.get("approach", "conservative"))
        aggregation = AggregationApproach(
            request.get("aggregation", "availability")
        )
        return SubcubeQuery(predicate, granularity, approach, aggregation)


def _parse_date(value: object) -> _dt.date:
    if not isinstance(value, str):
        raise ValueError("'now' must be an ISO date string (YYYY-MM-DD)")
    try:
        return _dt.date.fromisoformat(value)
    except ValueError:
        raise ValueError(f"bad date {value!r}; expected YYYY-MM-DD") from None
