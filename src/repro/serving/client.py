"""A retrying JSON-line client with deterministic backoff.

Retries cover exactly the failures retrying can help with: connection
errors (the server is restarting) and 429 backpressure rejections
(honouring the server's ``retry_after_ms`` hint as a floor under the
exponential schedule).  Deadline (504) and handler (500) failures are
*not* retried by default — repeating a request that just burned its
deadline only deepens the overload.

Backoff is exponential with multiplicative jitter drawn from a seeded
``random.Random``, so a test (or a reproduction of a production
incident) replays the exact same retry schedule.
"""

from __future__ import annotations

import asyncio
import json
import random
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ServingError


@dataclass(frozen=True)
class RetryPolicy:
    """An exponential-backoff schedule with seeded jitter."""

    max_attempts: int = 5
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    #: Fraction of each delay randomly shaved off (0 = fully determin-
    #: istic spacing; 0.5 = delays uniformly in [50%, 100%] of nominal).
    jitter: float = 0.5
    seed: int = 0

    def delays(self) -> "_DelaySchedule":
        return _DelaySchedule(self)


@dataclass
class _DelaySchedule:
    """The concrete delay sequence of one request's retry loop."""

    policy: RetryPolicy
    _rng: random.Random = field(init=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.policy.seed)

    def delay_for(self, attempt: int, floor: float = 0.0) -> float:
        """The backoff before retry *attempt* (0-based), >= *floor*."""
        nominal = min(
            self.policy.max_delay,
            self.policy.base_delay * self.policy.multiplier**attempt,
        )
        jittered = nominal * (1.0 - self.policy.jitter * self._rng.random())
        return max(floor, jittered)


class ServingClient:
    """An asyncio client for the :class:`~repro.serving.server.QueryServer`.

    One connection, sequential requests (the JSON-line protocol is
    strictly request/response per connection); concurrency comes from
    running several clients, as the benchmark does.
    """

    def __init__(
        self,
        host: str,
        port: int,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.policy = policy if policy is not None else RetryPolicy()
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        #: 429s absorbed by the retry loop (overload the client rode out).
        self.retried_rejections = 0
        #: Reconnects after a dropped connection.
        self.reconnects = 0

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._writer = None
            self._reader = None

    async def __aenter__(self) -> "ServingClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Request machinery
    # ------------------------------------------------------------------

    async def request(self, payload: Mapping) -> dict:
        """Send one request, retrying 429s and connection drops.

        Returns the (possibly ``ok: false``) response object; raises
        :class:`~repro.errors.ServingError` only when every attempt was
        consumed by a retryable failure.
        """
        schedule = self.policy.delays()
        last_reason = "no attempts made"
        for attempt in range(self.policy.max_attempts):
            try:
                response = await self._roundtrip(payload)
            except (ConnectionError, asyncio.IncompleteReadError) as exc:
                last_reason = f"connection failed: {exc}"
                self.reconnects += 1
                await self.close()
                await asyncio.sleep(schedule.delay_for(attempt))
                continue
            error = response.get("error") or {}
            if not response.get("ok") and error.get("code") == 429:
                self.retried_rejections += 1
                last_reason = "rejected: admission queue full"
                floor = float(response.get("retry_after_ms", 0)) / 1000.0
                await asyncio.sleep(schedule.delay_for(attempt, floor))
                continue
            return response
        raise ServingError(
            f"request failed after {self.policy.max_attempts} attempts "
            f"({last_reason})"
        )

    async def _roundtrip(self, payload: Mapping) -> dict:
        if self._reader is None or self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        self._writer.write(
            json.dumps(dict(payload), sort_keys=True).encode("utf-8") + b"\n"
        )
        await self._writer.drain()
        line = await self._reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        document = json.loads(line)
        if not isinstance(document, dict):
            raise ServingError(f"non-object response: {document!r}")
        return document

    # ------------------------------------------------------------------
    # Convenience ops
    # ------------------------------------------------------------------

    async def ping(self) -> dict:
        return await self.request({"op": "ping"})

    async def version(self) -> dict:
        return await self.request({"op": "version"})

    async def stats(self) -> dict:
        return await self.request({"op": "stats"})

    async def sync(self, now: str) -> dict:
        return await self.request({"op": "sync", "now": now})

    async def query(
        self,
        now: str,
        predicate: str | None = None,
        granularity: Mapping[str, str] | None = None,
        deadline_ms: int | None = None,
    ) -> dict:
        payload: dict = {"op": "query", "now": now, "predicate": predicate}
        if granularity is not None:
            payload["granularity"] = dict(granularity)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return await self.request(payload)

    async def shutdown(self) -> dict:
        return await self.request({"op": "shutdown"})
