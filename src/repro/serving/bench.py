"""Sustained-QPS-under-continuous-sync benchmark (``BENCH_serving.json``).

A fleet of concurrent JSON-line clients hammers a :class:`QueryServer`
while a background refresher continuously advances NOW and publishes
new snapshot versions — the exact contention MVCC snapshot isolation
exists to absorb.  The document (schema ``repro-bench-serving/1``)
reports sustained QPS, latency quantiles straight from the
``repro_serving_request_seconds`` histogram in the metrics registry,
backpressure/retry counts, and the snapshot-version churn the run rode
through, plus the standard ``environment`` block so runs from different
machines are never compared blindly.
"""

from __future__ import annotations

import asyncio
import datetime as _dt
import time

from ..bench import BenchProfile, _environment_block, _workload, _workload_block
from ..engine.store import SubcubeStore
from ..obs import metrics as obs_metrics
from . import telemetry
from .client import RetryPolicy, ServingClient
from .server import QueryServer, ServerConfig
from .service import ServingService

#: Schema tag of the serving benchmark document.
SERVING_SCHEMA = "repro-bench-serving/1"

#: The two request shapes the client mix alternates between: the grand
#: total (all dimensions at TOP, no predicate) and a selective rollup
#: that exercises predicate parsing, the plan cache, and aggregation.
_ROLLUP_GRANULARITY = {"Time": "year", "URL": "domain_grp"}
_ROLLUP_PREDICATE = "URL.domain_grp = '.com'"


async def _client_task(
    index: int,
    host: str,
    port: int,
    requests: int,
    now: _dt.date,
) -> dict:
    """One client's request loop; returns its outcome tally."""
    policy = RetryPolicy(seed=index)  # distinct, reproducible jitter
    tally = {"ok": 0, "failed": 0, "retried_rejections": 0, "degraded": 0}
    async with ServingClient(host, port, policy) as client:
        for n in range(requests):
            if (index + n) % 2:
                response = await client.query(
                    now.isoformat(),
                    predicate=_ROLLUP_PREDICATE,
                    granularity=_ROLLUP_GRANULARITY,
                )
            else:
                response = await client.query(now.isoformat())
            if response.get("ok"):
                tally["ok"] += 1
                if response.get("degraded"):
                    tally["degraded"] += 1
            else:
                tally["failed"] += 1
        tally["retried_rejections"] = client.retried_rejections
    return tally


async def _refresher_task(
    client: ServingClient,
    start: _dt.date,
    step_days: int,
    stop: asyncio.Event,
) -> dict:
    """Advance NOW through ``sync`` ops until the fleet finishes."""
    now = start
    syncs = {"published": 0, "held": 0}
    while not stop.is_set():
        now = now + _dt.timedelta(days=step_days)
        response = await client.sync(now.isoformat())
        if response.get("ok") and response.get("published"):
            syncs["published"] += 1
        else:
            syncs["held"] += 1
        # Yield so client traffic interleaves with the sync stream.
        await asyncio.sleep(0)
    return syncs


async def _run_fleet(
    server: QueryServer,
    profile: BenchProfile,
    clients: int,
    requests_per_client: int,
) -> dict:
    host, port = server.address
    stop = asyncio.Event()
    async with ServingClient(host, port) as sync_client:
        refresher = asyncio.create_task(
            _refresher_task(sync_client, profile.now, 7, stop)
        )
        started = time.perf_counter()
        tallies = await asyncio.gather(
            *(
                _client_task(
                    index, host, port, requests_per_client, profile.now
                )
                for index in range(clients)
            )
        )
        elapsed = time.perf_counter() - started
        stop.set()
        syncs = await refresher
    total_ok = sum(t["ok"] for t in tallies)
    return {
        "elapsed_seconds": elapsed,
        "requests_ok": total_ok,
        "requests_failed": sum(t["failed"] for t in tallies),
        "responses_degraded": sum(t["degraded"] for t in tallies),
        "rejections_retried": sum(
            t["retried_rejections"] for t in tallies
        ),
        "qps": (total_ok / elapsed) if elapsed > 0 else None,
        "syncs": syncs,
    }


def _latency_block(registry: obs_metrics.MetricsRegistry) -> dict:
    histogram = telemetry.request_histogram(registry)
    return {
        "count": histogram.count,
        "mean_seconds": (
            histogram.sum / histogram.count if histogram.count else None
        ),
        "p50_seconds": histogram.quantile(0.50),
        "p95_seconds": histogram.quantile(0.95),
        "p99_seconds": histogram.quantile(0.99),
    }


def run_serving_bench(
    profile: BenchProfile,
    clients: int = 32,
    requests_per_client: int | None = None,
) -> dict:
    """Run the serving benchmark and return its document."""
    if requests_per_client is None:
        requests_per_client = 4 if profile.name == "smoke" else 12
    mo, specification = _workload(profile)
    registry = obs_metrics.MetricsRegistry()
    store = SubcubeStore(mo, specification, metrics=registry)
    store.load(
        (
            fact_id,
            dict(zip(mo.schema.dimension_names, mo.direct_cell(fact_id))),
            {
                name: mo.measure_value(fact_id, name)
                for name in mo.schema.measure_names
            },
        )
        for fact_id in mo.facts()
    )
    store.synchronize(profile.now)
    service = ServingService(store)
    config = ServerConfig(max_queue=max(clients * 2, 64))

    async def run() -> dict:
        server = QueryServer(service, config)
        await server.start()
        try:
            return await _run_fleet(
                server, profile, clients, requests_per_client
            )
        finally:
            await server.stop()

    results = asyncio.run(run())
    document = {
        "schema": SERVING_SCHEMA,
        "metrics": registry.snapshot(),
        "environment": {
            **_environment_block(()),
            "clients": clients,
            "requests_per_client": requests_per_client,
            "max_queue": config.max_queue,
            "max_inflight": config.max_inflight,
        },
        "workload": _workload_block(profile, mo),
        "now": profile.now.isoformat(),
        "results": results,
        "latency": _latency_block(registry),
        "snapshots": {
            "final_version": service.version,
            "live_versions": service.snapshots.live_versions(),
        },
    }
    return document
