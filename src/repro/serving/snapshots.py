"""MVCC-style store snapshots: readers on version N, sync publishes N+1.

A :class:`StoreSnapshot` is a deep, immutable copy of a
:class:`~repro.engine.store.SubcubeStore` taken at a publication point
(right after a committed synchronization, mirroring the durable engine's
atomic snapshot protocol: build the complete new state off to the side,
then swap a single pointer).  A :class:`SnapshotManager` versions the
snapshots and refcounts readers: ``acquire`` pins the current version so
it survives being superseded mid-query, ``publish`` installs the next
version without waiting for readers, and a superseded version is retired
as soon as its last pin drops.  No reader ever observes a half-published
("torn") version — the swap is one assignment under a lock, and every
snapshot carries a content fingerprint the chaos suite re-verifies.
"""

from __future__ import annotations

import datetime as _dt
import json
import threading
import zlib
from contextlib import contextmanager
from typing import Iterator

from .. import sanitize
from ..core.mo import MultidimensionalObject
from ..engine.queryproc import SubcubeQuery, plan_cache, query_store
from ..engine.store import SubcubeStore
from ..errors import ServingError
from ..io import mo_to_dict
from ..obs import metrics as obs_metrics
from . import telemetry


def store_fingerprint(store: SubcubeStore) -> str:
    """A content hash of a store's visible state (cubes + sync clock).

    Two stores with equal fingerprints are observably identical; a
    snapshot whose recomputed fingerprint differs from the one taken at
    publication has been mutated after publish — a torn version.
    """
    canonical = json.dumps(
        {
            "cubes": {
                name: mo_to_dict(cube.mo)
                for name, cube in store.cubes.items()
            },
            "last_sync": (
                store.last_sync.isoformat() if store.last_sync else None
            ),
        },
        sort_keys=True,
    )
    return f"{zlib.crc32(canonical.encode('utf-8')):08x}"


def _freeze(store: SubcubeStore) -> SubcubeStore:
    """A deep copy of *store* sharing only immutable structure.

    The clone gets its own cube MOs (``MO.copy`` duplicates facts,
    relations, and measure values; dimensions and schema are shared —
    they are never mutated after construction) and its own private
    metrics registry, so queries against the snapshot never write into
    the live store's gauges.
    """
    clone = SubcubeStore(store._template, store._specification)
    for name, cube in store._cubes.items():
        clone._cubes[name]._mo = cube.mo.copy()
    clone.last_sync = store.last_sync
    clone._dirty = set(store._dirty)
    return clone


class StoreSnapshot:
    """One published, immutable store version.

    Instances are created by :meth:`SnapshotManager.publish` only.  The
    pin count is owned by the manager (mutated under the manager's
    lock); readers treat the snapshot as strictly read-only.
    """

    __slots__ = ("version", "fingerprint", "last_sync", "pins", "_store")

    def __init__(self, version: int, store: SubcubeStore) -> None:
        self.version = version
        self._store = _freeze(store)
        self.fingerprint = store_fingerprint(self._store)
        self.last_sync: _dt.date | None = self._store.last_sync
        self.pins = 0
        # The plan cache must exist before the mutation sanitizer seals
        # the frozen store: sealing blocks the lazy attach, and queries
        # against the sealed version still need somewhere to put plans.
        plan_cache(self._store)
        sanitize.seal_if_enabled(self._store)

    @property
    def store(self) -> SubcubeStore:
        """The frozen store (read-only by convention)."""
        return self._store

    def total_facts(self) -> int:
        return self._store.total_facts()

    def query(
        self,
        query: SubcubeQuery,
        now: _dt.date,
        *,
        assume_synchronized: bool = True,
    ) -> MultidimensionalObject:
        """Evaluate *query* against this version.

        Uses the snapshot's own plan cache, so repeated queries against
        one version compile each (predicate, time) pair once.
        """
        return query_store(
            self._store,
            query,
            now,
            assume_synchronized=assume_synchronized,
        )

    def warm_plans_from(self, predecessor: "StoreSnapshot") -> None:
        """Carry the predecessor's parsed predicate ASTs forward.

        Bound ASTs depend only on schema and dimensions, which every
        version shares, so a new version starts with the previous
        version's warm bindings instead of a cold cache (compiled
        verdict tables are *not* carried — they key on the predecessor's
        predicate object identities).
        """
        mine = plan_cache(self._store)
        theirs = getattr(predecessor._store, "_plan_cache", None)
        if theirs is not None:
            mine._bound.update(theirs._bound)

    def verify_integrity(self) -> bool:
        """Whether the snapshot still hashes to its publication state."""
        return store_fingerprint(self._store) == self.fingerprint

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StoreSnapshot(v{self.version}, facts={self.total_facts()}, "
            f"fp={self.fingerprint}, pins={self.pins})"
        )


class SnapshotManager:
    """Versioned, refcounted snapshot publication.

    Thread-safe: the asyncio server's worker threads acquire/release
    concurrently with the refresh loop's publish.  The manager never
    blocks publication on readers — superseded versions stay alive
    until their last pin drops, then retire.
    """

    def __init__(
        self, registry: obs_metrics.MetricsRegistry | None = None
    ) -> None:
        self._lock = threading.Lock()
        self._current: StoreSnapshot | None = None
        self._live: dict[int, StoreSnapshot] = {}
        self._next_version = 1
        self.metrics = (
            registry if registry is not None else obs_metrics.MetricsRegistry()
        )

    # ------------------------------------------------------------------
    # Writer side
    # ------------------------------------------------------------------

    def publish(self, store: SubcubeStore) -> StoreSnapshot:
        """Freeze *store* as the next version and make it current.

        The expensive copy happens outside the lock; the swap itself is
        a single assignment, so readers see either the old version or
        the new one, never a mixture.
        """
        with self._lock:
            version = self._next_version
            self._next_version += 1
        snapshot = StoreSnapshot(version, store)
        with self._lock:
            previous = self._current
            if previous is not None:
                snapshot.warm_plans_from(previous)
            self._current = snapshot
            self._live[snapshot.version] = snapshot
            if previous is not None and previous.pins == 0:
                self._retire(previous)
            self._publish_metrics(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Reader side
    # ------------------------------------------------------------------

    def current(self) -> StoreSnapshot | None:
        """The current version, unpinned (peek only)."""
        return self._current

    @property
    def version(self) -> int:
        snapshot = self._current
        return snapshot.version if snapshot is not None else 0

    def acquire(self) -> StoreSnapshot:
        """Pin and return the current version.

        The returned snapshot stays alive — even across later
        publishes — until the matching :meth:`release`.
        """
        with self._lock:
            snapshot = self._current
            if snapshot is None:
                raise ServingError("no snapshot has been published yet")
            snapshot.pins += 1
            self.metrics.gauge(
                telemetry.SNAPSHOT_PINS,
                help="Reader pins across all live snapshots.",
            ).inc()
            return snapshot

    def release(self, snapshot: StoreSnapshot) -> None:
        """Drop one pin; retire the version if superseded and unpinned."""
        with self._lock:
            if snapshot.pins <= 0:
                raise ServingError(
                    f"version {snapshot.version} released more times than "
                    "acquired"
                )
            snapshot.pins -= 1
            self.metrics.gauge(
                telemetry.SNAPSHOT_PINS,
                help="Reader pins across all live snapshots.",
            ).dec()
            if (
                snapshot.pins == 0
                and self._current is not snapshot
                and snapshot.version in self._live
            ):
                self._retire(snapshot)

    @contextmanager
    def pinned(self) -> Iterator[StoreSnapshot]:
        """``with manager.pinned() as snapshot:`` acquire/release pair."""
        snapshot = self.acquire()
        try:
            yield snapshot
        finally:
            self.release(snapshot)

    def live_versions(self) -> list[int]:
        """The versions currently alive (current + pinned superseded)."""
        with self._lock:
            return sorted(self._live)

    # ------------------------------------------------------------------
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------

    def _retire(self, snapshot: StoreSnapshot) -> None:
        del self._live[snapshot.version]
        self.metrics.counter(
            telemetry.SNAPSHOTS_RETIRED,
            help="Superseded snapshots retired after their last unpin.",
        ).inc()
        self.metrics.gauge(
            telemetry.SNAPSHOTS_LIVE,
            help="Snapshot versions alive (current + pinned superseded).",
        ).set(len(self._live))

    def _publish_metrics(self, snapshot: StoreSnapshot) -> None:
        self.metrics.counter(
            telemetry.SNAPSHOTS_PUBLISHED,
            help="Snapshot versions published since startup.",
        ).inc()
        self.metrics.gauge(
            telemetry.SNAPSHOT_VERSION,
            help="Version number of the snapshot currently served.",
        ).set(snapshot.version)
        self.metrics.gauge(
            telemetry.SNAPSHOTS_LIVE,
            help="Snapshot versions alive (current + pinned superseded).",
        ).set(len(self._live))
