"""Snapshot-isolated concurrent serving over the subcube engine.

The layers, bottom up:

* :mod:`~repro.serving.snapshots` — MVCC-style versioned, refcounted
  store snapshots: readers pin version N while a refresh publishes N+1;
* :mod:`~repro.serving.breaker` — a deterministic circuit breaker that
  degrades the service to stale read-only answers when refreshes fail;
* :mod:`~repro.serving.service` — the store + snapshots + breaker
  composite with the guarded ``refresh`` path;
* :mod:`~repro.serving.server` / :mod:`~repro.serving.client` — an
  asyncio JSON-line protocol with per-request deadlines, bounded
  admission (429 backpressure), and a retrying client with seeded
  exponential backoff;
* :mod:`~repro.serving.bench` — the sustained-QPS-under-continuous-sync
  benchmark behind ``BENCH_serving.json``.

See ``docs/serving.md`` for the protocol and failure semantics.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .client import RetryPolicy, ServingClient
from .server import QueryServer, ServerConfig
from .service import ServingService
from .snapshots import SnapshotManager, StoreSnapshot, store_fingerprint

__all__ = [
    "CLOSED",
    "HALF_OPEN",
    "OPEN",
    "CircuitBreaker",
    "QueryServer",
    "RetryPolicy",
    "ServerConfig",
    "ServingClient",
    "ServingService",
    "SnapshotManager",
    "StoreSnapshot",
    "store_fingerprint",
]
