"""A deterministic circuit breaker guarding the refresh path.

States follow the classic pattern: *closed* (refreshes flow),
*open* (refreshes rejected; the server keeps serving the last good
snapshot read-only), *half-open* (after the cooldown, exactly one probe
is admitted — success closes the breaker, failure re-opens it and
restarts the cooldown).

Determinism is a test requirement, not an aspiration: the clock is
injectable (tests pass a fake), transitions depend only on the sequence
of ``allow``/``record_*`` calls and the clock readings, and every
transition is counted in the metrics registry, so the chaos suite can
assert the exact closed → open → half-open → closed trajectory under a
seeded fault schedule.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..errors import ServingError
from ..obs import metrics as obs_metrics
from . import telemetry

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Trip after consecutive failures; probe again after a cooldown."""

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ServingError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ServingError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_inflight = False
        self.metrics = (
            metrics if metrics is not None else obs_metrics.MetricsRegistry()
        )
        self._set_state_gauge(CLOSED)

    @property
    def state(self) -> str:
        """The current state, with open→half-open promotion applied."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def allow(self) -> bool:
        """Whether the caller may attempt the guarded operation now.

        In half-open state only the *first* caller gets the probe slot;
        concurrent callers are rejected until the probe resolves via
        ``record_success``/``record_failure``.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probe_inflight:
                self._probe_inflight = True
                return True
            return False

    def record_success(self) -> None:
        """The guarded operation succeeded: close from any state."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_inflight = False
            self._transition(CLOSED)

    def record_failure(self) -> None:
        """The guarded operation failed: count toward the threshold, or
        re-open immediately if this was the half-open probe."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                self._probe_inflight = False
                self._open()
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._open()
            elif self._state == OPEN:
                # A straggler failure while already open restarts the
                # cooldown — the dependency is still unhealthy.
                self._opened_at = self._clock()

    # ------------------------------------------------------------------
    # Internals (callers hold the lock)
    # ------------------------------------------------------------------

    def _open(self) -> None:
        self._opened_at = self._clock()
        self._transition(OPEN)

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown
        ):
            self._probe_inflight = False
            self._transition(HALF_OPEN)

    def _transition(self, to: str) -> None:
        if to == self._state:
            return
        self.metrics.counter(
            telemetry.BREAKER_TRANSITIONS,
            {"from": self._state, "to": to},
            help="Circuit-breaker state transitions.",
        ).inc()
        self._state = to
        self._set_state_gauge(to)

    def _set_state_gauge(self, state: str) -> None:
        self.metrics.gauge(
            telemetry.BREAKER_STATE,
            help="Breaker state: 0 closed, 1 open, 2 half-open.",
        ).set(telemetry.BREAKER_STATE_CODES[state])
