"""Metric families of the serving layer (``repro_serving_*``).

Every family reports into the serving service's registry (the same
per-store registry the sync/query/durability counters live in, so one
Prometheus scrape or ``stats`` op covers the whole server).  Catalogued
in ``docs/observability.md``; the serving benchmark derives its
QPS/p99 headline numbers from exactly these families.
"""

from __future__ import annotations

from ..obs import metrics as obs_metrics

# Request path -------------------------------------------------------------
#: Requests finished, by operation and terminal status
#: (``ok|rejected|deadline|error|degraded``).
REQUESTS = "repro_serving_requests_total"
#: End-to-end request latency (admission to response write), seconds.
REQUEST_SECONDS = "repro_serving_request_seconds"
#: Requests waiting for an execution slot right now.
QUEUE_DEPTH = "repro_serving_queue_depth"
#: Requests executing right now.
INFLIGHT = "repro_serving_inflight"
#: Requests turned away, by reason (``overload|deadline|handler``).
REJECTED = "repro_serving_rejected_total"
#: Responses served from a stale snapshot while the breaker was open.
DEGRADED = "repro_serving_degraded_responses_total"

# Snapshot lifecycle -------------------------------------------------------
#: Version number of the snapshot currently served.
SNAPSHOT_VERSION = "repro_serving_snapshot_version"
#: Snapshot versions alive (current + superseded-but-pinned).
SNAPSHOTS_LIVE = "repro_serving_snapshots_live"
#: Reader pins across all live snapshots.
SNAPSHOT_PINS = "repro_serving_snapshot_pins"
#: Snapshots published since the server started.
SNAPSHOTS_PUBLISHED = "repro_serving_snapshots_published_total"
#: Superseded snapshots retired after their last reader unpinned.
SNAPSHOTS_RETIRED = "repro_serving_snapshots_retired_total"

# Refresh / breaker --------------------------------------------------------
#: Synchronize-and-publish refresh attempts, by outcome
#: (``ok|failed|rejected``; rejected = the breaker refused the attempt).
REFRESHES = "repro_serving_refresh_total"
#: Circuit-breaker state: 0 = closed, 1 = open, 2 = half-open.
BREAKER_STATE = "repro_serving_breaker_state"
#: Breaker state transitions, labelled ``from``/``to``.
BREAKER_TRANSITIONS = "repro_serving_breaker_transitions_total"

#: Latency buckets for the request histogram: sub-millisecond to the
#: multi-second deadline range.
LATENCY_BUCKETS = (
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
)

# Block sanitizer ----------------------------------------------------------
#: Event-loop stalls past the ``REPRO_SANITIZE=block`` threshold.
LOOP_STALLS = "repro_serving_loop_stalls_total"
#: Worst event-loop stall the block sanitizer has observed, seconds.
LOOP_STALL_SECONDS = "repro_serving_loop_stall_seconds"

#: Numeric encoding of breaker states for the gauge.
BREAKER_STATE_CODES = {"closed": 0, "open": 1, "half_open": 2}


def request_histogram(
    registry: obs_metrics.MetricsRegistry,
) -> obs_metrics.Histogram:
    """The request-latency histogram in *registry* (create on first use)."""
    return registry.histogram(
        REQUEST_SECONDS,
        buckets=LATENCY_BUCKETS,
        help="End-to-end request latency in seconds.",
    )
