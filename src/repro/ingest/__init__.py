"""Streaming bulk ingest: batched append, group commit, backpressure.

The producer side of the serving stack — the fast path for getting
facts *into* the warehouse the paper's reduction machinery assumes they
are already in:

* :mod:`repro.ingest.sources` — CSV/JSONL row adapters with typed
  validation and a per-row error policy (reject / skip / dead-letter);
* :mod:`repro.ingest.batch` — :class:`FactBatchBuffer`, column-oriented
  accumulation straight into the interned columnar layout (no per-fact
  Python objects on the hot path), validated by the same
  :class:`~repro.core.rowcheck.RowValidator` single-fact insert uses;
* :mod:`repro.ingest.commit` — :class:`StreamingLoader`, group commit:
  one fsync'd journal record per batch instead of per fact;
* :mod:`repro.ingest.pressure` — :class:`BoundedBuffer`, bounded-queue
  backpressure so a slow disk stalls producers instead of ballooning
  memory;
* :mod:`repro.ingest.bench` — the throughput benchmark behind
  ``repro bench --ingest`` (``BENCH_ingest.json``).

See ``docs/ingest.md`` for formats, semantics, and knobs.
"""

from .batch import FactBatchBuffer
from .commit import StreamingLoader
from .pressure import BoundedBuffer
from .sources import (
    BadRow,
    DeadLetterFile,
    ErrorPolicy,
    SourceRow,
    open_source,
    parse_csv,
    parse_jsonl,
)

__all__ = [
    "BadRow",
    "BoundedBuffer",
    "DeadLetterFile",
    "ErrorPolicy",
    "FactBatchBuffer",
    "SourceRow",
    "StreamingLoader",
    "open_source",
    "parse_csv",
    "parse_jsonl",
]
