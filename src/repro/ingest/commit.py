"""Group commit: one fsync'd journal record per batch, not per fact.

A :class:`StreamingLoader` buffers validated rows in a
:class:`~repro.ingest.batch.FactBatchBuffer` and flushes each full
batch through one ``SubcubeStore.load`` call.  On a durable store that
is exactly one ``load`` journal record — written and fsynced *before*
any insert — so a batch is atomic under crash: recovery replays all of
it or none of it, never a prefix.  The fsync cost amortizes over the
batch (``repro bench --ingest`` measures the ratio).

Flush triggers, in the order checked on every :meth:`add`:

* ``size`` — the buffer reached ``batch_size`` rows;
* ``timer`` — ``flush_ms`` elapsed since the oldest buffered row (the
  latency bound for trickle streams);
* ``final`` — :meth:`flush` at end of stream.

Failpoints: ``ingest.batch`` fires before the commit record is written
(crash loses the whole in-flight batch), ``ingest.commit`` after the
store committed (crash must replay the full batch on recovery).
"""

from __future__ import annotations

import time
from typing import Iterable, Mapping

from ..engine.faults import PASSIVE, FaultInjector
from ..engine.telemetry import (
    INGEST_BATCHES,
    INGEST_COMMIT_SECONDS,
    INGEST_FACTS,
)
from ..errors import DimensionError, FactError, IngestError, MeasureError
from .batch import FactBatchBuffer
from .pressure import BoundedBuffer
from .sources import BadRow, ErrorPolicy, SourceRow

_FACTS_HELP = (
    "Facts seen by the ingest path, by outcome "
    "(committed|skipped|dead_lettered|rejected)."
)
_BATCHES_HELP = "Group commits, by flush trigger (size|timer|final)."

#: Queue item ending a pipelined ingest stream.
_DONE = object()


class StreamingLoader:
    """Batched, group-committed streaming loads into a store.

    Works against any ``SubcubeStore`` (plain or durable): batching is a
    pure win either way — fewer journal records and fsyncs on the
    durable path, fewer load spans and telemetry increments on both.
    """

    def __init__(
        self,
        store,
        *,
        batch_size: int = 4096,
        flush_ms: float | None = None,
        faults: FaultInjector | None = None,
        clock=time.monotonic,
    ) -> None:
        if batch_size < 1:
            raise IngestError(f"batch size must be >= 1, got {batch_size}")
        if flush_ms is not None and flush_ms < 0:
            raise IngestError(f"flush-ms must be >= 0, got {flush_ms}")
        self.store = store
        self.metrics = store.metrics
        template = store.bottom_cube.mo
        self.buffer = FactBatchBuffer(template.schema, template.dimensions)
        self.batch_size = batch_size
        self.flush_ms = flush_ms
        self._faults = (
            faults
            if faults is not None
            else getattr(store, "_faults", PASSIVE)
        )
        self._clock = clock
        self._oldest: float | None = None
        self.committed_facts = 0
        self.committed_batches = 0

    def add(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measures: Mapping[str, object],
    ) -> int:
        """Validate and buffer one row; flush if a trigger is due.

        Returns the number of facts committed by this call (0, or a
        whole batch).  A row that fails validation raises before
        touching the buffer; every batch committed so far stays
        committed.
        """
        self.buffer.add(fact_id, coordinates, measures)
        if self._oldest is None:
            self._oldest = self._clock()
        if len(self.buffer) >= self.batch_size:
            return self.flush(trigger="size")
        if (
            self.flush_ms is not None
            and (self._clock() - self._oldest) * 1000.0 >= self.flush_ms
        ):
            return self.flush(trigger="timer")
        return 0

    def flush(self, trigger: str = "final") -> int:
        """Group-commit the buffered rows as one store load.

        One journal record, one fsync, all-or-nothing; a no-op on an
        empty buffer.
        """
        if not len(self.buffer):
            return 0
        self._faults.hit("ingest.batch")
        staged = self.buffer.drain()
        self._oldest = None
        started = time.perf_counter()
        self.store.load(staged)
        elapsed = time.perf_counter() - started
        self._faults.hit("ingest.commit")
        self.committed_facts += len(staged)
        self.committed_batches += 1
        self.metrics.counter(
            INGEST_BATCHES, {"trigger": trigger}, help=_BATCHES_HELP
        ).inc()
        self.metrics.counter(
            INGEST_FACTS, {"outcome": "committed"}, help=_FACTS_HELP
        ).inc(len(staged))
        self.metrics.histogram(
            INGEST_COMMIT_SECONDS,
            help="Wall-clock seconds per ingest group commit.",
        ).observe(elapsed)
        return len(staged)

    # ------------------------------------------------------------------
    # Stream drivers
    # ------------------------------------------------------------------

    def ingest(
        self,
        rows: Iterable,
        policy: ErrorPolicy | None = None,
    ) -> dict[str, int]:
        """Drive a whole row stream through the loader.

        *rows* yields :class:`SourceRow`/:class:`BadRow` items (the
        source adapters) or plain ``(id, coordinates, measures)``
        triples (programmatic ingest).  Refused rows — format-bad or
        model-invalid — go to *policy* (default: reject).  Ends with a
        ``final`` flush; returns the outcome tally.
        """
        policy = policy or ErrorPolicy()
        for row in rows:
            self._ingest_one(row, policy)
        self.flush(trigger="final")
        self._record_policy(policy)
        return {
            "committed": self.committed_facts,
            "skipped": policy.skipped,
            "dead_lettered": policy.dead_lettered,
        }

    def ingest_pipelined(
        self,
        rows: Iterable,
        policy: ErrorPolicy | None = None,
        queue_size: int = 1024,
    ) -> dict[str, int]:
        """:meth:`ingest` through a bounded queue and a committer thread.

        The producer (this thread) parses and enqueues; the consumer
        thread validates and group-commits.  A full queue blocks the
        producer — backpressure, not memory growth.  Errors on either
        side re-raise here after both sides stop.
        """
        import threading

        policy = policy or ErrorPolicy()
        queue = BoundedBuffer(queue_size, metrics=self.metrics)
        failure: list[BaseException] = []

        def consume() -> None:
            try:
                while True:
                    item = queue.get()
                    if item is _DONE or item is None:
                        return
                    self._ingest_one(item, policy)
                    # Drain greedily so the gauge reflects real lag.
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failure.append(exc)
                # Unstick the producer: swallow the rest of the stream.
                while queue.get(timeout=0) is not None:
                    pass

        committer = threading.Thread(target=consume, name="ingest-commit")
        committer.start()
        try:
            for row in rows:
                if failure:
                    break
                queue.put(row)
            if not failure:
                queue.put(_DONE)
        finally:
            queue.close()
            committer.join()
        if failure:
            raise failure[0]
        self.flush(trigger="final")
        self._record_policy(policy)
        return {
            "committed": self.committed_facts,
            "skipped": policy.skipped,
            "dead_lettered": policy.dead_lettered,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _ingest_one(self, row, policy: ErrorPolicy) -> str:
        if isinstance(row, BadRow):
            return policy.handle(row)
        if isinstance(row, SourceRow):
            line, triple = row.line, (
                row.fact_id, row.coordinates, row.measures
            )
        else:
            line, triple = 0, row
        fact_id, coordinates, measures = triple
        try:
            self.add(fact_id, coordinates, measures)
        except (DimensionError, FactError, MeasureError) as exc:
            return policy.handle(BadRow(line, str(exc), fact_id))
        return "committed"

    def _record_policy(self, policy: ErrorPolicy) -> None:
        """Bulk-record the policy outcomes (per stream, not per row)."""
        for outcome, count in (
            ("skipped", policy.skipped),
            ("dead_lettered", policy.dead_lettered),
        ):
            if count:
                self.metrics.counter(
                    INGEST_FACTS, {"outcome": outcome}, help=_FACTS_HELP
                ).inc(count)
