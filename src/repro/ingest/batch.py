"""Column-oriented fact accumulation for the ingest hot path.

A :class:`FactBatchBuffer` validates rows through the same
:class:`~repro.core.rowcheck.RowValidator` that single-fact
``MO.insert_fact`` uses (one code path, identical errors) and
accumulates them as parallel columns — one id list, one value list per
dimension, one per measure.  Nothing per-fact is allocated beyond the
list slots: no staging dicts, no intermediate fact objects.

Two drains serve the two consumers:

* :meth:`flush_to_table` appends the columns straight into a
  :class:`~repro.core.columnar.ColumnarFactTable` via the vectorized
  ``append_rows``/``extend_codes`` kernels (the pure columnar path);
* :meth:`drain` returns ``(id, coordinates, measures)`` triples — the
  shape ``SubcubeStore.load`` journals — for the group-commit path.
"""

from __future__ import annotations

from typing import Mapping

from ..core.columnar import ColumnarFactTable
from ..core.dimension import Dimension
from ..core.rowcheck import RowValidator
from ..core.schema import FactSchema
from ..errors import FactError


class FactBatchBuffer:
    """Validated, column-oriented accumulation of fact rows.

    Validation happens on :meth:`add` — a refused row never touches the
    buffer, so the error policy composes cleanly with batching: a batch
    only ever contains admissible facts.  Duplicate ids are tracked per
    *stream* (across flushes), mirroring the store's duplicate check.
    """

    def __init__(
        self,
        schema: FactSchema,
        dimensions: Mapping[str, Dimension],
        validator: RowValidator | None = None,
    ) -> None:
        self.schema = schema
        self.validator = validator or RowValidator(schema, dimensions)
        self._seen: set[str] = set()
        self._ids: list[str] = []
        self._coordinates: dict[str, list[str]] = {
            name: [] for name in schema.dimension_names
        }
        self._measures: dict[str, list[object]] = {
            name: [] for name in schema.measure_names
        }

    def __len__(self) -> int:
        return len(self._ids)

    def add(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measures: Mapping[str, object],
    ) -> None:
        """Validate one row and append its columns.

        Raises exactly what ``MO.insert_fact`` would; on raise the
        buffer is unchanged.
        """
        if fact_id in self._seen:
            raise FactError(f"fact {fact_id!r} already exists")
        canonical = self.validator.validate_row(
            fact_id, coordinates, measures, bottom_only=True
        )
        self._seen.add(fact_id)
        self._ids.append(fact_id)
        for name in self.schema.dimension_names:
            self._coordinates[name].append(canonical[name])
        for name in self.schema.measure_names:
            self._measures[name].append(measures[name])

    def flush_to_table(self, table: ColumnarFactTable) -> int:
        """Append the buffered columns into *table* and clear the buffer."""
        appended = table.append_rows(
            self._ids, self._coordinates, self._measures
        )
        self._clear()
        return appended

    def drain(self) -> list[tuple[str, dict[str, str], dict[str, object]]]:
        """The buffered rows as store-load triples; clears the buffer."""
        ids = self._ids
        coordinate_columns = [
            (name, self._coordinates[name])
            for name in self.schema.dimension_names
        ]
        measure_columns = [
            (name, self._measures[name])
            for name in self.schema.measure_names
        ]
        rows = [
            (
                ids[row],
                {name: column[row] for name, column in coordinate_columns},
                {name: column[row] for name, column in measure_columns},
            )
            for row in range(len(ids))
        ]
        self._clear()
        return rows

    def _clear(self) -> None:
        self._ids = []
        for column in self._coordinates.values():
            del column[:]
        for column in self._measures.values():
            del column[:]
