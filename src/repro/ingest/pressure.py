"""Bounded-queue backpressure for the ingest pipeline.

The admission pattern of the serving layer (finite queue, explicit
refusal, never unbounded buffering) applied to the producer side: a
:class:`BoundedBuffer` sits between the row parser and the group
committer, so a slow disk stalls the producer (blocking :meth:`put`)
instead of ballooning memory, and admission-controlled producers can
:meth:`try_put` and get an immediate refusal — the 429 shape — instead
of blocking an event loop.

Telemetry is event-driven, not per-row: stall and rejection counters
tick when backpressure actually engages, and the queue-depth gauge is
sampled at those same events (plus close), matching the per-operation
design rule of ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from collections import deque

from ..engine.telemetry import (
    INGEST_FACTS,
    INGEST_QUEUE_DEPTH,
    INGEST_STALLS,
)
from ..errors import IngestError
from ..obs import metrics as obs_metrics

_FACTS_HELP = (
    "Facts seen by the ingest path, by outcome "
    "(committed|skipped|dead_lettered|rejected)."
)


class BoundedBuffer:
    """A thread-safe FIFO with a hard capacity.

    * :meth:`put` blocks while full — the producer stalls (counted);
    * :meth:`try_put` refuses while full — the caller sheds load;
    * :meth:`get` blocks while empty, returning ``None`` only after
      :meth:`close` once the queue has drained.
    """

    def __init__(
        self,
        capacity: int,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise IngestError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.metrics = (
            metrics if metrics is not None else obs_metrics.MetricsRegistry()
        )
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self.stalls = 0
        self.rejected = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    def _gauge_depth_locked(self) -> None:
        self.metrics.gauge(
            INGEST_QUEUE_DEPTH,
            help="Rows waiting in the bounded ingest queue.",
        ).set(len(self._items))

    def put(self, item: object, timeout: float | None = None) -> bool:
        """Enqueue, stalling while the queue is full.

        Returns ``False`` only when *timeout* elapsed with the queue
        still full; raises :class:`IngestError` if the queue is closed.
        """
        with self._not_full:
            if self._closed:
                raise IngestError("ingest queue is closed")
            if len(self._items) >= self.capacity:
                self.stalls += 1
                self.metrics.counter(
                    INGEST_STALLS,
                    help="Producer stalls on a full ingest queue.",
                ).inc()
                self._gauge_depth_locked()
                if not self._not_full.wait_for(
                    lambda: self._closed
                    or len(self._items) < self.capacity,
                    timeout=timeout,
                ):
                    return False
                if self._closed:
                    raise IngestError("ingest queue is closed")
            self._items.append(item)
            self._not_empty.notify()
            return True

    def try_put(self, item: object) -> bool:
        """Enqueue without blocking; ``False`` refuses an overfull queue."""
        with self._not_full:
            if self._closed:
                raise IngestError("ingest queue is closed")
            if len(self._items) >= self.capacity:
                self.rejected += 1
                self.metrics.counter(
                    INGEST_FACTS, {"outcome": "rejected"}, help=_FACTS_HELP
                ).inc()
                self._gauge_depth_locked()
                return False
            self._items.append(item)
            self._not_empty.notify()
            return True

    def get(self, timeout: float | None = None) -> object | None:
        """Dequeue, blocking while empty.

        Returns ``None`` when the queue is closed and drained, or when
        *timeout* elapsed on an empty, still-open queue.
        """
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                return None
            if not self._items:
                return None
            item = self._items.popleft()
            self._not_full.notify()
            return item

    def close(self) -> None:
        """Refuse further puts; pending items stay consumable."""
        with self._lock:
            self._closed = True
            self._gauge_depth_locked()
            self._not_full.notify_all()
            self._not_empty.notify_all()
