"""The ingest throughput benchmark behind ``repro bench --ingest``.

Writes ``BENCH_ingest.json``: facts/sec of the streaming group-commit
path at ≥100k-fact scale, against two references on the same workload —

* **per-fact journaling** — one ``store.load`` call per fact (one
  journal record and one fsync each), timed on a documented slice of
  the stream because the full run would be dominated by fsync alone;
* **one-shot load** — the pre-existing bulk path: the entire fact set
  in a single ``store.load`` (one fsync, but the whole stream resident
  in memory first).

The headline claim is the ``fsync_amortization`` block: fsyncs *per
fact* on the per-fact path vs the batched path, measured from the
``repro_journal_fsync_total`` counter, not inferred.  The document
carries the batched run's full metrics snapshot plus the standard
environment/workload blocks, and validates against
``docs/schemas/bench-ingest.schema.json``.
"""

from __future__ import annotations

import datetime as dt
import os
import tempfile
import time
from dataclasses import replace

from ..bench import _environment_block
from ..engine.durable import DurableStore
from ..engine.telemetry import JOURNAL_FSYNC
from ..obs import metrics as obs_metrics
from ..spec.specification import ReductionSpecification
from ..workload import (
    ClickstreamConfig,
    build_clickstream_mo,
    generate_clicks,
    grouped_retention_actions,
)
from .commit import StreamingLoader

INGEST_SCHEMA = "repro-bench-ingest/1"

#: The full workload: 731 days x 140 clicks/day = 102,340 facts — the
#: ≥100k-fact scale the acceptance criteria name.
FULL_CONFIG = ClickstreamConfig(
    start=dt.date(1999, 1, 1),
    end=dt.date(2000, 12, 31),
    domains_per_group=3,
    urls_per_domain=3,
    clicks_per_day=140,
    seed=1234,
)

#: CI-sized: 90 days x 40 clicks/day = 3,640 facts.
SMOKE_CONFIG = ClickstreamConfig(
    start=dt.date(1999, 1, 1),
    end=dt.date(1999, 3, 31),
    domains_per_group=3,
    urls_per_domain=3,
    clicks_per_day=40,
    seed=1234,
)


def _fresh_store(root: str, name: str, template, specification, fsync):
    registry = obs_metrics.MetricsRegistry()
    store = DurableStore.create(
        os.path.join(root, name),
        template,
        specification,
        fsync=fsync,
        metrics=registry,
    )
    return store, registry


def run_ingest_bench(
    smoke: bool = False,
    *,
    batch_size: int = 4096,
    fsync: bool = True,
    per_fact_facts: int = 2000,
) -> dict:
    """Run the three ingest modes; return the BENCH document."""
    config = SMOKE_CONFIG if smoke else FULL_CONFIG
    facts = list(generate_clicks(config))
    template = build_clickstream_mo(replace(config, clicks_per_day=0))
    specification = ReductionSpecification(
        grouped_retention_actions(template, detail_months=3, coarse_years=2),
        template.dimensions,
    )
    per_fact_slice = min(per_fact_facts, len(facts))

    with tempfile.TemporaryDirectory(prefix="repro-bench-ingest-") as root:
        # Batched group commit over the whole stream.
        store, registry = _fresh_store(
            root, "batched", template, specification, fsync
        )
        loader = StreamingLoader(store, batch_size=batch_size)
        started = time.perf_counter()
        tally = loader.ingest(iter(facts))
        batched_seconds = time.perf_counter() - started
        batched_fsyncs = int(registry.value(JOURNAL_FSYNC) or 0)
        snapshot = registry.snapshot()
        store.close()

        # Per-fact journaling on a documented slice of the same stream.
        store, per_fact_registry = _fresh_store(
            root, "per_fact", template, specification, fsync
        )
        started = time.perf_counter()
        for triple in facts[:per_fact_slice]:
            store.load([triple])
        per_fact_seconds = time.perf_counter() - started
        per_fact_fsyncs = int(per_fact_registry.value(JOURNAL_FSYNC) or 0)
        store.close()

        # One-shot load: the pre-existing bulk path, whole stream at once.
        store, one_shot_registry = _fresh_store(
            root, "one_shot", template, specification, fsync
        )
        started = time.perf_counter()
        store.load(facts)
        one_shot_seconds = time.perf_counter() - started
        one_shot_fsyncs = int(one_shot_registry.value(JOURNAL_FSYNC) or 0)
        store.close()

    per_fact_rate = per_fact_fsyncs / per_fact_slice if per_fact_slice else 0.0
    batched_rate = batched_fsyncs / len(facts) if facts else 0.0
    return {
        "schema": INGEST_SCHEMA,
        "metrics": snapshot,
        "environment": {**_environment_block(()), "fsync": fsync},
        "workload": {
            "profile": "smoke" if smoke else "full",
            "facts": len(facts),
            "start": config.start.isoformat(),
            "end": config.end.isoformat(),
            "domains_per_group": config.domains_per_group,
            "urls_per_domain": config.urls_per_domain,
            "clicks_per_day": config.clicks_per_day,
            "seed": config.seed,
        },
        "batched": {
            "batch_size": batch_size,
            "facts": tally["committed"],
            "batches": loader.committed_batches,
            "seconds": batched_seconds,
            "facts_per_s": tally["committed"] / batched_seconds,
            "fsyncs": batched_fsyncs,
        },
        "per_fact": {
            "facts": per_fact_slice,
            "seconds": per_fact_seconds,
            "facts_per_s": (
                per_fact_slice / per_fact_seconds
                if per_fact_seconds > 0
                else None
            ),
            "fsyncs": per_fact_fsyncs,
        },
        "one_shot": {
            "facts": len(facts),
            "seconds": one_shot_seconds,
            "facts_per_s": len(facts) / one_shot_seconds,
            "fsyncs": one_shot_fsyncs,
        },
        "fsync_amortization": {
            # Fsyncs per fact, measured from the journal counter on each
            # run; the ratio is the group-commit claim (>= 10x fewer).
            "per_fact_fsyncs_per_fact": per_fact_rate,
            "batched_fsyncs_per_fact": batched_rate,
            "ratio": (per_fact_rate / batched_rate) if batched_rate else None,
        },
    }
