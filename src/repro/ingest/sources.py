"""Fact-row source adapters: JSONL and CSV, typed, with error policy.

Both adapters turn a text stream into a stream of parsed rows without
ever materializing the file: each yielded item is either a
:class:`SourceRow` (shape-checked and type-checked, ready for the model
validator) or a :class:`BadRow` carrying the line number and the reason.
What happens to bad rows is the :class:`ErrorPolicy`'s decision —
``reject`` (raise, the default), ``skip`` (count and drop), or
``dead-letter`` (append to a JSONL side file that survives the run).

Typed validation here is *format*-level: the fact id and coordinate
values must be strings, measure values JSON scalars (so the group-commit
journal record can serialize them canonically).  *Model*-level
validation — unknown dimension values, non-bottom coordinates, missing
measures — happens in :class:`~repro.ingest.batch.FactBatchBuffer`
through the shared :class:`~repro.core.rowcheck.RowValidator`.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass
from typing import IO, Iterator

from ..engine.faults import PASSIVE, FaultInjector
from ..errors import IngestError

#: Measure values the journal can serialize canonically.
_SCALARS = (str, int, float, bool)

#: The error-policy modes ``--on-error`` accepts.
ERROR_POLICIES = ("reject", "skip", "dead-letter")


@dataclass(frozen=True)
class SourceRow:
    """One well-formed source row, not yet model-validated."""

    line: int
    fact_id: str
    coordinates: dict[str, str]
    measures: dict[str, object]


@dataclass(frozen=True)
class BadRow:
    """One row the adapters or the model validator refused."""

    line: int
    reason: str
    raw: str


class DeadLetterFile:
    """An append-only JSONL side file of refused rows.

    One object per refused row — ``{"line", "reason", "raw"}`` — flushed
    per write, so rows dead-lettered before a crash survive the restart
    (the ``ingest.deadletter`` failpoint sits just before the write).
    """

    def __init__(self, path: str, faults: FaultInjector = PASSIVE) -> None:
        self.path = path
        self.count = 0
        self._faults = faults
        self._stream: IO[str] | None = open(path, "a", encoding="utf-8")

    def write(self, row: BadRow) -> None:
        if self._stream is None:
            raise IngestError(f"dead-letter file {self.path!r} is closed")
        self._faults.hit("ingest.deadletter")
        record = {"line": row.line, "reason": row.reason, "raw": row.raw}
        self._stream.write(json.dumps(record, sort_keys=True) + "\n")
        self._stream.flush()
        self.count += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __enter__(self) -> "DeadLetterFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class ErrorPolicy:
    """What ingest does with a refused row.

    ``reject`` raises :class:`IngestError` (stream aborts, store keeps
    every batch committed so far); ``skip`` counts and drops; ``dead-
    letter`` appends to the configured :class:`DeadLetterFile`.  The
    counters feed the ``repro_ingest_facts_total`` outcomes.
    """

    def __init__(
        self,
        mode: str = "reject",
        dead_letter: DeadLetterFile | None = None,
    ) -> None:
        if mode not in ERROR_POLICIES:
            known = ", ".join(ERROR_POLICIES)
            raise IngestError(f"unknown error policy {mode!r}; known: {known}")
        if mode == "dead-letter" and dead_letter is None:
            raise IngestError(
                "error policy 'dead-letter' needs a dead-letter file"
            )
        self.mode = mode
        self.dead_letter = dead_letter
        self.skipped = 0
        self.dead_lettered = 0

    def handle(self, row: BadRow) -> str:
        """Apply the policy; returns the outcome label for telemetry."""
        if self.mode == "reject":
            raise IngestError(f"line {row.line}: {row.reason}")
        if self.mode == "skip":
            self.skipped += 1
            return "skipped"
        assert self.dead_letter is not None
        self.dead_letter.write(row)
        self.dead_lettered += 1
        return "dead_lettered"


def _shape_check(
    line: int, raw: str, payload: object
) -> SourceRow | BadRow:
    """Typed shape validation shared by the JSONL and CSV adapters."""
    if not isinstance(payload, dict):
        return BadRow(line, "row is not an object", raw)
    fact_id = payload.get("id")
    if not isinstance(fact_id, str) or not fact_id:
        return BadRow(line, "missing or non-string 'id'", raw)
    coordinates = payload.get("coordinates")
    if not isinstance(coordinates, dict):
        return BadRow(line, "missing or non-object 'coordinates'", raw)
    for name, value in coordinates.items():
        if not isinstance(value, str):
            return BadRow(
                line, f"coordinate {name!r} is not a string", raw
            )
    measures = payload.get("measures")
    if not isinstance(measures, dict):
        return BadRow(line, "missing or non-object 'measures'", raw)
    for name, value in measures.items():
        if not isinstance(value, _SCALARS):
            return BadRow(
                line, f"measure {name!r} is not a JSON scalar", raw
            )
    return SourceRow(line, fact_id, dict(coordinates), dict(measures))


def parse_jsonl(stream: IO[str]) -> Iterator[SourceRow | BadRow]:
    """Parse a JSONL fact stream: one
    ``{"id", "coordinates", "measures"}`` object per line (the same fact
    shape the write-ahead journal's load records use).  Blank lines are
    ignored; malformed lines come out as :class:`BadRow`.
    """
    for line_number, line in enumerate(stream, start=1):
        raw = line.rstrip("\n")
        if not raw.strip():
            continue
        try:
            payload = json.loads(raw)
        except ValueError as exc:
            yield BadRow(line_number, f"invalid JSON: {exc}", raw)
            continue
        yield _shape_check(line_number, raw, payload)


def parse_csv(
    stream: IO[str],
    dimension_names: tuple[str, ...],
    measure_names: tuple[str, ...],
) -> Iterator[SourceRow | BadRow]:
    """Parse a CSV fact stream with an ``id`` column, one column per
    dimension, and one per measure (header row required).

    Measure cells are typed numerically when they parse as ``int`` or
    ``float``, kept as strings otherwise.  A header missing a required
    column is a stream-level :class:`IngestError` — there is no way to
    build any row from it.
    """
    reader = csv.DictReader(stream)
    header = reader.fieldnames or []
    required = ["id", *dimension_names, *measure_names]
    missing = [name for name in required if name not in header]
    if missing:
        raise IngestError(
            f"CSV header lacks required columns {missing!r} "
            f"(found {list(header)!r})"
        )
    for record in reader:
        line_number = reader.line_num
        raw = ",".join(
            "" if record.get(name) is None else str(record.get(name))
            for name in header
        )
        fact_id = record.get("id") or ""
        if not fact_id:
            yield BadRow(line_number, "missing or empty 'id'", raw)
            continue
        short = [
            name for name in required if record.get(name) in (None, "")
        ]
        if short:
            yield BadRow(
                line_number, f"missing values for columns {short!r}", raw
            )
            continue
        coordinates = {name: record[name] for name in dimension_names}
        measures: dict[str, object] = {}
        for name in measure_names:
            cell = record[name]
            try:
                measures[name] = int(cell)
            except ValueError:
                try:
                    measures[name] = float(cell)
                except ValueError:
                    measures[name] = cell
        yield SourceRow(line_number, fact_id, coordinates, measures)


def open_source(
    path: str,
    dimension_names: tuple[str, ...],
    measure_names: tuple[str, ...],
    source_format: str = "auto",
):
    """Open *path* and return ``(stream, row_iterator)`` for its format.

    ``auto`` resolves by extension: ``.csv`` is CSV, everything else is
    JSONL.  The caller owns closing the returned stream.
    """
    if source_format == "auto":
        source_format = "csv" if path.endswith(".csv") else "jsonl"
    if source_format not in ("jsonl", "csv"):
        raise IngestError(
            f"unknown source format {source_format!r}; known: jsonl, csv"
        )
    stream = open(path, "r", encoding="utf-8", newline="")
    if source_format == "csv":
        rows = parse_csv(stream, dimension_names, measure_names)
    else:
        rows = parse_jsonl(stream)
    return stream, rows
