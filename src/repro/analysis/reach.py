"""Reachability: unsatisfiable and union-shadowed ("dead") actions.

An action is *unsatisfiable* when no DNF disjunct can admit a cell at any
sampled evaluation time (the ``SDR104`` condition).  It is *dead* when it
is satisfiable but every cell it can ever admit is also admitted, at
every sampled time, by the **union** of other actions at granularities at
least as coarse — so the action never determines a fact's granularity.
Union coverage is strictly stronger than the single-container subsumption
of ``SDR106``: three catchers may jointly shadow an action none of them
shadows alone.

The proof enumerates the grounded bottom cells of each live disjunct,
groups them by which exact catcher disjuncts cover them, and checks
day-interval union coverage (:func:`repro.checks.prover.interval_covered`)
at every sampled time.  Whenever grounding or enumeration fails the
action is conservatively reported live.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..checks.prover import (
    ProverConfig,
    categorical_regions,
    cell_in_region,
    enumerate_region_product,
    interval_covered,
    profiles_overlap,
    sample_times,
)
from ..core.dimension import Dimension
from ..spec.action import Action
from ..spec.ranges import ConjunctProfile, profiles_of, window_at
from .boxes import window_modelled_exactly

_INF = float("inf")

#: Cap on enumerated cells per disjunct; above it the action stays live.
COVERAGE_CELL_CAP = 512


@dataclass
class ReachabilityResult:
    """Classification of every action as live, unsatisfiable, or dead."""

    unsatisfiable: tuple[str, ...] = ()
    #: Dead action -> the catcher actions whose union covers it.
    dead: dict[str, tuple[str, ...]] = field(default_factory=dict)
    live: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "unsatisfiable": list(self.unsatisfiable),
            "dead": {
                name: list(catchers) for name, catchers in self.dead.items()
            },
            "live": list(self.live),
        }


def reachability(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> ReachabilityResult:
    """Classify the actions; sound (never calls a live action dead)."""
    config = config or ProverConfig()
    profiles = {a.name: profiles_of(a) for a in actions}
    live_profiles = {
        a.name: [
            p
            for p in profiles[a.name]
            if profiles_overlap(p, p, dimensions, config)
        ]
        for a in actions
    }
    result = ReachabilityResult()
    unsat: list[str] = []
    live: list[str] = []
    for index, action in enumerate(actions):
        mine = live_profiles[action.name]
        if not mine:
            unsat.append(action.name)
            continue
        catchers = _catcher_profiles(actions, index, profiles)
        covered_by = _union_covered(mine, catchers, dimensions, config)
        if covered_by is not None:
            result.dead[action.name] = covered_by
        else:
            live.append(action.name)
    result.unsatisfiable = tuple(unsat)
    result.live = tuple(live)
    return result


def _catcher_profiles(
    actions: Sequence[Action],
    index: int,
    profiles: Mapping[str, Sequence[ConjunctProfile]],
) -> list[tuple[str, ConjunctProfile]]:
    """Exact disjuncts of actions at coarser-or-equal granularity.

    For duplicates at the same granularity only the *earlier* action may
    act as catcher, so exactly one of a duplicated pair is reported dead
    (mirroring the SDR106 convention).
    """
    action = actions[index]
    out: list[tuple[str, ConjunctProfile]] = []
    for j, other in enumerate(actions):
        if j == index or not action.le(other):
            continue
        if action.cat() == other.cat() and j > index:
            continue
        for q in profiles[other.name]:
            if q.unmodelled_atoms or not window_modelled_exactly(q):
                continue  # an over-approximated catcher cannot prove cover
            out.append((other.name, q))
    return out


def _union_covered(
    mine: Sequence[ConjunctProfile],
    catchers: Sequence[tuple[str, ConjunctProfile]],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> tuple[str, ...] | None:
    """The catcher names whose union covers every disjunct, or ``None``."""
    if not catchers:
        return None
    contributors: set[str] = set()
    catcher_regions = [
        (name, q, categorical_regions(q, dimensions))
        for name, q in catchers
    ]
    for p in mine:
        regions = categorical_regions(p, dimensions)
        cells = enumerate_region_product(
            regions, dimensions, min(config.region_cap, COVERAGE_CELL_CAP)
        )
        if cells is None or not cells:
            return None  # cannot enumerate: stay live
        # Which catchers cover a cell is time-independent; group cells by
        # that signature so the time loop runs once per distinct group.
        signatures: set[tuple[int, ...]] = set()
        for cell in cells:
            signature = tuple(
                k
                for k, (_, _, qreg) in enumerate(catcher_regions)
                if cell_in_region(cell, qreg)
            )
            if not signature:
                return None
            signatures.add(signature)
        horizon = sample_times(
            [p, *(q for _, q in catchers)], config
        )
        for signature in signatures:
            group = [catcher_regions[k] for k in signature]
            for t in horizon:
                target = window_at(p, t) or (-_INF, _INF)
                pieces = [window_at(q, t) for _, q, _ in group]
                if not interval_covered(target, pieces):
                    return None
            contributors.update(name for name, _, _ in group)
    return tuple(sorted(contributors))
