"""The bundled analysis result consumed by lint, the CLI, and the docs.

:func:`analyze_actions` / :func:`analyze_specification` run the
relationship matrix, the reachability pass, the cost estimator, and (when
a disjoint action set can be built) the independence certificate, and
bundle them into one :class:`SpecAnalysis` with stable ``to_dict`` /
``render_text`` shapes.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

from ..checks.prover import ProverConfig
from ..core.dimension import Dimension
from ..errors import ReproError
from ..spec.action import Action
from .cost import ActionCost, estimate_costs
from .independence import IndependenceReport, independence_report
from .matrix import RelationshipMatrix, relationship_matrix
from .reach import ReachabilityResult, reachability

if TYPE_CHECKING:
    from ..spec.specification import ReductionSpecification

#: Stable schema tag of the JSON rendering.
ANALYSIS_SCHEMA = "repro-analysis/1"


@dataclass
class SpecAnalysis:
    """Everything the semantic analyzer proved about a specification."""

    actions: tuple[str, ...]
    matrix: RelationshipMatrix
    reach: ReachabilityResult
    costs: tuple[ActionCost, ...]
    independence: IndependenceReport | None
    reference: _dt.date
    horizon_years: int

    def to_dict(self) -> dict[str, object]:
        return {
            "schema": ANALYSIS_SCHEMA,
            "reference": self.reference.isoformat(),
            "horizon_years": self.horizon_years,
            "actions": list(self.actions),
            "matrix": self.matrix.to_dict(),
            "reachability": self.reach.to_dict(),
            "costs": [cost.to_dict() for cost in self.costs],
            "independence": (
                self.independence.to_dict() if self.independence else None
            ),
        }

    def render_text(self) -> str:
        lines = [
            "Semantic analysis "
            f"(reference {self.reference.isoformat()}, "
            f"horizon {self.horizon_years}y)",
            "",
            "Action-relationship matrix:",
        ]
        for relation in self.matrix.pairs():
            line = (
                f"  {relation.first} vs {relation.second}: "
                f"{relation.verdict.value.upper()} - {relation.reason}"
            )
            if relation.witness is not None:
                witness = relation.witness
                cell = ", ".join(
                    f"{k}={v}" for k, v in witness.cell
                )
                day = witness.day.isoformat() if witness.day else "-"
                line += (
                    f" [witness at={witness.at.isoformat()} day={day}"
                    + (f" cell=({cell})" if cell else "")
                    + "]"
                )
            lines.append(line)
        if not self.matrix.pairs():
            lines.append("  (fewer than two actions)")
        lines.append("")
        lines.append("Reachability:")
        lines.append(
            "  live: " + (", ".join(self.reach.live) or "(none)")
        )
        if self.reach.unsatisfiable:
            lines.append(
                "  unsatisfiable: " + ", ".join(self.reach.unsatisfiable)
            )
        for name, catchers in self.reach.dead.items():
            lines.append(
                f"  dead: {name} (union-covered by {', '.join(catchers)})"
            )
        lines.append("")
        lines.append("Cost estimates (upper bounds at the reference time):")
        for cost in self.costs:
            granularity = ", ".join(cost.granularity)
            if cost.admitted_cells is None:
                lines.append(
                    f"  {cost.action} -> [{granularity}]: not groundable"
                )
                continue
            selectivity = (
                f"{100.0 * cost.selectivity:.1f}%"
                if cost.selectivity is not None
                else "?"
            )
            output = (
                str(cost.output_cells)
                if cost.output_cells is not None
                else "?"
            )
            lines.append(
                f"  {cost.action} -> [{granularity}]: "
                f"<= {cost.admitted_cells} of {cost.total_cells} bottom "
                f"cells ({selectivity}), <= {output} after rollup"
            )
        lines.append("")
        lines.append("Independence certificate:")
        if self.independence is None:
            lines.append("  (no disjoint action set could be built)")
        else:
            for pair in self.independence.pairs:
                if pair.independent:
                    dims = ", ".join(pair.separating_dimensions)
                    lines.append(
                        f"  {pair.first} || {pair.second} "
                        f"(separated on {dims})"
                    )
            groups = " ".join(
                "{" + ", ".join(group) + "}"
                for group in self.independence.shard_groups
            )
            lines.append(f"  shard groups: {groups}")
        return "\n".join(lines) + "\n"


def analyze_actions(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> SpecAnalysis:
    """Run every analysis over already-bound actions."""
    config = config or ProverConfig()
    matrix = relationship_matrix(actions, dimensions, config)
    reach = reachability(actions, dimensions, config)
    costs = estimate_costs(actions, dimensions, config)
    independence = _independence(actions, dimensions, config)
    return SpecAnalysis(
        actions=tuple(a.name for a in actions),
        matrix=matrix,
        reach=reach,
        costs=costs,
        independence=independence,
        reference=config.reference,
        horizon_years=config.horizon_years,
    )


def _independence(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> IndependenceReport | None:
    if not actions:
        return None
    # Late imports keep the analysis layer importable without the engine.
    from ..engine.disjoint import disjoint_actions
    from ..spec.specification import ReductionSpecification

    try:
        specification = ReductionSpecification(
            tuple(actions), dimensions, validate=False
        )
        cubes = disjoint_actions(specification)
    except ReproError:
        return None
    by_name = {action.name: action for action in actions}
    return independence_report(cubes, by_name, dimensions, config)


def analyze_specification(
    specification: ReductionSpecification,
    config: ProverConfig | None = None,
) -> SpecAnalysis:
    """Analyze a bound :class:`ReductionSpecification` with its own
    dimensions and prover configuration."""
    return analyze_actions(
        list(specification),
        specification.dimensions,
        config or specification.prover_config,
    )
