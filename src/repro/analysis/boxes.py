"""The box domain: per-conjunct abstraction of predicate semantics.

One DNF disjunct of a bound action abstracts to a :class:`ConjunctBox` —
the grounded bottom-value region per non-time dimension plus the
conjunct's day-axis window machinery (kept on the underlying
:class:`~repro.spec.ranges.ConjunctProfile`, whose
:func:`~repro.spec.ranges.window_at` gives the exact day interval at each
evaluation time).  A box is a sound over-approximation of the bottom
cells the disjunct can ever admit; it is *exact* when no part of the
abstraction widened (no unmodelled order atoms, no membership hulls, no
ungroundable regions), in which case definite verdicts may rest on it.

The containment helpers here generalize the ``SDR106`` machinery that
previously lived in :mod:`repro.lint.rules`, so lint and analysis share
one proof of profile containment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..checks.prover import (
    ProverConfig,
    categorical_regions,
    region_is_symbolic,
    sample_times,
)
from ..core.dimension import Dimension
from ..spec.action import Action
from ..spec.ranges import (
    ConjunctProfile,
    profiles_of,
    window_at,
    window_contains,
)


def window_modelled_exactly(profile: ConjunctProfile) -> bool:
    """Whether ``window_at`` is exact (not an over-approximation) for the
    profile: only plain comparisons, no membership hulls or exclusions."""
    return all(
        atom.op in ("<", "<=", ">", ">=", "=") for atom in profile.time_atoms
    )


@dataclass(frozen=True)
class ConjunctBox:
    """One DNF disjunct abstracted to grounded per-dimension regions."""

    profile: ConjunctProfile
    #: Bottom-value region per non-time dimension; ``None`` means
    #: unconstrained, a symbolic region means constrained but ungrounded.
    regions: Mapping[str, frozenset[str] | None]

    @property
    def action(self) -> Action:
        return self.profile.action


def boxes_of(
    action: Action,
    dimensions: Mapping[str, Dimension] | None = None,
) -> tuple[ConjunctBox, ...]:
    """One box per DNF disjunct of the action's predicate."""
    return tuple(
        ConjunctBox(profile, categorical_regions(profile, dimensions))
        for profile in profiles_of(action)
    )


def box_is_exact(box: ConjunctBox) -> bool:
    """Whether no part of the box over-approximates the disjunct.

    Exactness licenses definite verdicts: the box admits a bottom cell at
    time ``t`` if and only if the disjunct does.
    """
    if box.profile.unmodelled_atoms:
        return False
    if not window_modelled_exactly(box.profile):
        return False
    return not any(region_is_symbolic(r) for r in box.regions.values())


# ----------------------------------------------------------------------
# Containment proofs (shared by SDR106 and the relationship matrix)
# ----------------------------------------------------------------------

def region_contained(
    inner: ConjunctProfile,
    outer: ConjunctProfile,
    dimensions: Mapping[str, Dimension] | None,
) -> bool:
    """Prove the inner categorical region is inside the outer one."""
    inner_regions = categorical_regions(inner, dimensions)
    outer_regions = categorical_regions(outer, dimensions)
    for name, outer_region in outer_regions.items():
        if outer_region is None:
            continue  # outer unconstrained in this dimension
        if region_is_symbolic(outer_region):
            return False  # cannot prove coverage with an ungrounded region
        inner_region = inner_regions.get(name)
        if inner_region is None or region_is_symbolic(inner_region):
            return False
        if not inner_region <= outer_region:
            return False
    return True


def profile_contained(
    inner: ConjunctProfile,
    outer: ConjunctProfile,
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig | None = None,
) -> bool:
    """Prove every bottom cell *inner* admits, *outer* admits too, at
    every sampled evaluation time.

    Refuses (returns ``False``) whenever the outer profile would be an
    over-approximation — definite containment may only rest on an exact
    outer box.
    """
    config = config or ProverConfig()
    if outer.unmodelled_atoms or not window_modelled_exactly(outer):
        return False  # the outer region would be an over-approximation
    if not region_contained(inner, outer, dimensions):
        return False
    for t in sample_times((inner, outer), config):
        inner_window = window_at(inner, t)
        outer_window = window_at(outer, t)
        if inner_window is None:
            if outer_window is not None:
                return False
            continue
        if not window_contains(outer_window, inner_window):
            return False
    return True
