"""The action-relationship matrix (sound pairwise classification).

Every unordered pair of actions is classified over the box domain:

* ``DISJOINT`` — no conjunct pair of the two actions can admit a common
  bottom cell at any sampled evaluation time (the bounded prover errs
  toward overlap, so a negative answer is a proof on the horizon);
* ``SUBSUMED`` / ``SUBSUMES`` — every bottom cell one action admits, the
  other admits too, at every sampled time (exact outer boxes only);
* ``EQUIVALENT`` — containment in both directions;
* ``OVERLAPPING`` — a *verified* witness cell exists: a materialized
  bottom cell admitted by both actions at a concrete time (only issued
  when both boxes are exact, so the claim cannot be an artifact of
  widening);
* ``UNKNOWN`` — none of the above could be proved; carries the prover's
  candidate witness as the counterexample to investigate.

Definite verdicts are sound by construction: the analysis may answer
``UNKNOWN``, never a wrong definite verdict.  All claims quantify over
bottom cells of the dimension instances and the sampled horizon.
"""

from __future__ import annotations

import datetime as _dt
import enum
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..checks.prover import (
    OverlapWitness,
    ProverConfig,
    overlap_witness,
    profiles_overlap,
)
from ..core.dimension import Dimension
from ..spec.action import Action, is_time_dimension_type
from ..spec.ranges import ConjunctProfile, profiles_of, window_at
from ..timedim.calendar import first_day
from .boxes import ConjunctBox, box_is_exact, boxes_of, profile_contained


class Verdict(enum.Enum):
    """The verdict lattice of the relationship matrix."""

    DISJOINT = "disjoint"
    SUBSUMED = "subsumed"
    SUBSUMES = "subsumes"
    EQUIVALENT = "equivalent"
    OVERLAPPING = "overlapping"
    UNKNOWN = "unknown"


_FLIPPED = {
    Verdict.SUBSUMED: Verdict.SUBSUMES,
    Verdict.SUBSUMES: Verdict.SUBSUMED,
}


@dataclass(frozen=True)
class PairRelation:
    """The classified relationship of one ordered action pair."""

    first: str
    second: str
    verdict: Verdict
    reason: str
    witness: OverlapWitness | None = None

    def flipped(self) -> "PairRelation":
        return PairRelation(
            self.second,
            self.first,
            _FLIPPED.get(self.verdict, self.verdict),
            self.reason,
            self.witness,
        )


@dataclass
class RelationshipMatrix:
    """All pairwise relations, keyed by the input action order."""

    actions: tuple[str, ...]
    relations: dict[tuple[str, str], PairRelation] = field(
        default_factory=dict
    )

    def get(self, first: str, second: str) -> PairRelation | None:
        relation = self.relations.get((first, second))
        if relation is not None:
            return relation
        reverse = self.relations.get((second, first))
        if reverse is not None:
            return reverse.flipped()
        return None

    def pairs(self) -> list[PairRelation]:
        return [self.relations[key] for key in sorted(self.relations)]

    def to_dict(self) -> dict[str, object]:
        return {
            "actions": list(self.actions),
            "pairs": [
                {
                    "first": r.first,
                    "second": r.second,
                    "verdict": r.verdict.value,
                    "reason": r.reason,
                    "witness": _witness_dict(r.witness),
                }
                for r in self.pairs()
            ],
        }


def _witness_dict(witness: OverlapWitness | None) -> dict[str, object] | None:
    if witness is None:
        return None
    return {
        "at": witness.at.isoformat(),
        "day": witness.day.isoformat() if witness.day else None,
        "cell": dict(witness.cell),
    }


def _time_dimension_name(action: Action) -> str | None:
    for name in action.schema.dimension_names:
        if is_time_dimension_type(action.schema.dimension_type(name)):
            return name
    return None


def _grounded_day(
    dimensions: Mapping[str, Dimension] | None,
    time_dimension: str | None,
    p1: ConjunctProfile,
    p2: ConjunctProfile,
    at: _dt.date,
) -> _dt.date | None:
    """A materialized day admitted by both windows at time *at*."""
    if dimensions is None or time_dimension not in (dimensions or {}):
        return None
    dimension = dimensions[time_dimension]
    w1 = window_at(p1, at)
    w2 = window_at(p2, at)
    for value in sorted(dimension.values(dimension.bottom_category)):
        day = first_day(dimension.bottom_category, value)
        ordinal = float(day.toordinal())
        if w1 is not None and not (w1[0] <= ordinal <= w1[1]):
            continue
        if w2 is not None and not (w2[0] <= ordinal <= w2[1]):
            continue
        return day
    return None


def _verified_witness(
    box_a: ConjunctBox,
    box_b: ConjunctBox,
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> OverlapWitness | None:
    """A witness whose every coordinate is grounded and re-checked.

    Requires exact boxes on both sides; the returned cell names a bottom
    value for every non-time dimension and (when time is constrained) a
    materialized day inside both exact windows, so both disjuncts
    certainly admit the cell at the witness time.
    """
    if not (box_is_exact(box_a) and box_is_exact(box_b)):
        return None
    candidate = overlap_witness(
        box_a.profile, box_b.profile, dimensions, config
    )
    if candidate is None:
        return None
    action = box_a.action
    time_dimension = _time_dimension_name(action)
    cell = candidate.cell_mapping()
    for name in action.schema.dimension_names:
        if name == time_dimension:
            continue
        if name not in cell:
            return None  # could not ground this dimension
    timed = bool(box_a.profile.time_atoms or box_b.profile.time_atoms)
    day = candidate.day
    if timed or time_dimension is not None:
        day = _grounded_day(
            dimensions,
            time_dimension,
            box_a.profile,
            box_b.profile,
            candidate.at,
        )
        if day is None:
            return None
    return OverlapWitness(candidate.at, day, tuple(sorted(cell.items())))


def relationship_matrix(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> RelationshipMatrix:
    """Classify every action pair; sound, possibly ``UNKNOWN``."""
    config = config or ProverConfig()
    matrix = RelationshipMatrix(tuple(a.name for a in actions))
    all_boxes = {a.name: boxes_of(a, dimensions) for a in actions}
    live: dict[str, list[ConjunctBox]] = {
        a.name: [
            box
            for box in all_boxes[a.name]
            if profiles_overlap(box.profile, box.profile, dimensions, config)
        ]
        for a in actions
    }
    for i, a in enumerate(actions):
        for b in actions[i + 1 :]:
            matrix.relations[(a.name, b.name)] = _classify(
                a, b, all_boxes, live, dimensions, config
            )
    return matrix


def _contained(
    inner: Iterable[ConjunctBox],
    outer: Sequence[ConjunctBox],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> bool:
    return all(
        any(
            profile_contained(box.profile, other.profile, dimensions, config)
            for other in outer
        )
        for box in inner
    )


def _classify(
    a: Action,
    b: Action,
    all_boxes: Mapping[str, Sequence[ConjunctBox]],
    live: Mapping[str, Sequence[ConjunctBox]],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> PairRelation:
    live_a = live[a.name]
    live_b = live[b.name]
    overlap = any(
        profiles_overlap(pa.profile, pb.profile, dimensions, config)
        for pa in live_a
        for pb in live_b
    )
    if not overlap:
        return PairRelation(
            a.name,
            b.name,
            Verdict.DISJOINT,
            "no conjunct pair admits a common bottom cell at any sampled "
            "evaluation time",
        )
    a_in_b = bool(live_a) and _contained(
        live_a, all_boxes[b.name], dimensions, config
    )
    b_in_a = bool(live_b) and _contained(
        live_b, all_boxes[a.name], dimensions, config
    )
    if a_in_b and b_in_a:
        return PairRelation(
            a.name,
            b.name,
            Verdict.EQUIVALENT,
            "each action's live disjuncts are contained in the other's "
            "at every sampled time",
        )
    if a_in_b:
        return PairRelation(
            a.name,
            b.name,
            Verdict.SUBSUMED,
            f"every cell {a.name!r} admits is admitted by {b.name!r} at "
            "every sampled time",
        )
    if b_in_a:
        return PairRelation(
            a.name,
            b.name,
            Verdict.SUBSUMES,
            f"every cell {b.name!r} admits is admitted by {a.name!r} at "
            "every sampled time",
        )
    candidate: OverlapWitness | None = None
    for pa in live_a:
        for pb in live_b:
            verified = _verified_witness(pa, pb, dimensions, config)
            if verified is not None:
                return PairRelation(
                    a.name,
                    b.name,
                    Verdict.OVERLAPPING,
                    "a materialized bottom cell is admitted by both "
                    "actions at the witness time",
                    witness=verified,
                )
            if candidate is None:
                candidate = overlap_witness(
                    pa.profile, pb.profile, dimensions, config
                )
    return PairRelation(
        a.name,
        b.name,
        Verdict.UNKNOWN,
        "overlap is plausible but not provable (over-approximated boxes "
        "or ungrounded regions); the witness is a candidate, not a proof",
        witness=candidate,
    )
