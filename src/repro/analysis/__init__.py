"""Semantic analysis of reduction specifications (abstract interpretation).

The package interprets specification predicates over a *box domain*: each
DNF disjunct abstracts to per-dimension grounded value regions
(:func:`repro.checks.prover.categorical_regions`) plus a day-axis time
window (:func:`repro.spec.ranges.window_at`), evaluated against the
dimension instances and the bounded prover's sampled horizon.  On top of
the domain sit four analyses:

* :func:`repro.analysis.matrix.relationship_matrix` — a sound
  action-relationship matrix (DISJOINT / SUBSUMED / SUBSUMES /
  OVERLAPPING / EQUIVALENT / UNKNOWN);
* :func:`repro.analysis.reach.reachability` — unsatisfiable and
  union-shadowed ("dead") actions;
* :func:`repro.analysis.cost.estimate_costs` — static selectivity and
  output-size estimates from hierarchy cell cardinalities;
* :func:`repro.analysis.independence.independence_report` — the
  independence certificate naming which disjoint subcubes touch provably
  disjoint fact regions (the contract for shard-parallel reduction).

:func:`repro.analysis.report.analyze_specification` bundles them into one
:class:`~repro.analysis.report.SpecAnalysis` consumed by the ``SDR2xx``
lint rules, the ``repro analyze`` CLI command, and the disjoint-predicate
pruning in :mod:`repro.engine.disjoint`.
"""

from .boxes import (
    ConjunctBox,
    box_is_exact,
    boxes_of,
    profile_contained,
    region_contained,
    window_modelled_exactly,
)
from .cost import ActionCost, estimate_costs
from .independence import (
    IndependencePair,
    IndependenceReport,
    independence_report,
)
from .matrix import (
    PairRelation,
    RelationshipMatrix,
    Verdict,
    relationship_matrix,
)
from .pruning import negation_prunable
from .reach import ReachabilityResult, reachability
from .report import (
    ANALYSIS_SCHEMA,
    SpecAnalysis,
    analyze_actions,
    analyze_specification,
)

__all__ = [
    "ANALYSIS_SCHEMA",
    "ActionCost",
    "ConjunctBox",
    "IndependencePair",
    "IndependenceReport",
    "PairRelation",
    "ReachabilityResult",
    "RelationshipMatrix",
    "SpecAnalysis",
    "Verdict",
    "analyze_actions",
    "analyze_specification",
    "box_is_exact",
    "boxes_of",
    "estimate_costs",
    "independence_report",
    "negation_prunable",
    "profile_contained",
    "region_contained",
    "relationship_matrix",
    "window_modelled_exactly",
    "reachability",
]
