"""Sound pruning of negation terms in disjoint predicates.

The disjoint transform (Section 7.1) conjoins each group predicate with
``NOT raw(g)`` for every coarser group ``g``.  When group ``G`` and group
``g`` provably never compete for a cell, the negation term is dead weight
— but dropping it must preserve evaluation *bit for bit* under both the
conservative and the liberal approach, on cells of any granularity up to
``G``'s target.  Region-level disjointness is **not** sufficient: the
liberal reading of a conjunction distributes per atom over aggregated
cells, so ``NOT g`` can evaluate false on a cell even when ``g``'s region
is empty.

The sufficient condition implemented here is a *separating atom pair*:
for **every** pair of DNF conjuncts ``(p in G, q in g)`` there must exist
atoms ``b in p`` and ``a in q`` such that either

* **categorical**: same dimension and same category (below TOP), both
  ``=``/``in``, both value sets materialized in the dimension instance,
  and the sets disjoint — then on any cell at category <= ``Cat_G``,
  ``conservative(b)`` forces all bottom descendants into ``b``'s values
  (so ``liberal(a)`` is false) and ``liberal(b)`` exhibits a descendant
  outside ``a``'s values (so ``conservative(a)`` is false); or
* **temporal**: both plain comparisons on the time dimension *at the same
  category*, whose single-atom day windows never intersect at any sampled
  evaluation time — the same exchange argument over the shared
  drill-down element set.

Either way ``eval(P_G, x) => not eval_dual(g, x)`` for every cell ``x``
at granularity <= ``Cat(G)``, which is exactly what makes
``P_G AND NOT g  ==  P_G`` an identity for cube ``G``.  Residual-cube
negations have no positive anchor and are never pruned.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..checks.prover import ProverConfig, sample_times
from ..core.dimension import Dimension
from ..core.hierarchy import is_top
from ..spec.action import Action, is_time_dimension_type
from ..spec.ast import Atom
from ..spec.ranges import profile_conjunct, window_at, windows_intersect

_PLAIN_OPS = ("<", "<=", ">", ">=", "=")


def negation_prunable(
    group_actions: Sequence[Action],
    other_actions: Sequence[Action],
    granularity: Sequence[str],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig | None = None,
) -> bool:
    """Whether cube *group_actions* may drop ``NOT raw(other_actions)``.

    True only when every (conjunct of the group's raw predicate, conjunct
    of the other group's raw predicate) pair has a separating atom pair;
    *granularity* is the group's target (per schema dimension order).
    """
    if not group_actions or not other_actions:
        return False
    config = config or ProverConfig()
    schema = group_actions[0].schema
    targets = dict(zip(schema.dimension_names, granularity))
    anchor = group_actions[0]
    group_conjuncts = [
        atoms for action in group_actions for atoms in action.conjuncts()
    ]
    other_conjuncts = [
        atoms for action in other_actions for atoms in action.conjuncts()
    ]
    if not group_conjuncts or not other_conjuncts:
        return False
    return all(
        _separated(p, q, anchor, targets, dimensions, config)
        for p in group_conjuncts
        for q in other_conjuncts
    )


def _separated(
    p: Sequence[Atom],
    q: Sequence[Atom],
    anchor: Action,
    targets: Mapping[str, str],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> bool:
    for b in p:
        for a in q:
            if _categorical_separation(b, a, anchor, targets, dimensions):
                return True
            if _temporal_separation(b, a, anchor, targets, config):
                return True
    return False


def _grounded_values(
    atom: Atom, dimension: Dimension
) -> frozenset[str] | None:
    """The atom's constant values, or ``None`` if any is unmaterialized
    at the compared category (exactness of the exchange argument needs
    every constant to denote a real dimension value)."""
    known = dimension.values(atom.ref.category)
    values = set()
    for term in atom.terms:
        if not isinstance(term, str) or term not in known:
            return None
        values.add(term)
    return frozenset(values)


def _categorical_separation(
    b: Atom,
    a: Atom,
    anchor: Action,
    targets: Mapping[str, str],
    dimensions: Mapping[str, Dimension] | None,
) -> bool:
    if b.op not in ("=", "in") or a.op not in ("=", "in"):
        return False
    if b.ref.dimension != a.ref.dimension:
        return False
    if b.ref.category != a.ref.category or is_top(b.ref.category):
        return False
    name = b.ref.dimension
    if is_time_dimension_type(anchor.schema.dimension_type(name)):
        return False
    if is_top(targets.get(name, "")):
        return False  # ALL-cells evaluate liberally true for any atom
    if dimensions is None or name not in dimensions:
        return False
    dimension = dimensions[name]
    values_b = _grounded_values(b, dimension)
    values_a = _grounded_values(a, dimension)
    if values_b is None or values_a is None:
        return False
    return not (values_b & values_a)


def _temporal_separation(
    b: Atom,
    a: Atom,
    anchor: Action,
    targets: Mapping[str, str],
    config: ProverConfig,
) -> bool:
    if b.op not in _PLAIN_OPS or a.op not in _PLAIN_OPS:
        return False
    if b.ref.dimension != a.ref.dimension:
        return False
    if b.ref.category != a.ref.category or is_top(b.ref.category):
        return False
    name = b.ref.dimension
    if not is_time_dimension_type(anchor.schema.dimension_type(name)):
        return False
    if is_top(targets.get(name, "")):
        return False
    # Single-atom exact windows: the liberal reading of a conjunction is
    # per atom, so separation must hold atom-against-atom, not on the
    # conjuncts' combined windows.
    profile_b = profile_conjunct(anchor, [b])
    profile_a = profile_conjunct(anchor, [a])
    for t in sample_times((profile_b, profile_a), config):
        if windows_intersect(window_at(profile_b, t), window_at(profile_a, t)):
            return False
    return True
