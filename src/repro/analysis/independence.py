"""Independence certificates over the disjoint action set.

A fact's bottom-cell coordinates determine every subcube that can ever
own it: cube ``K`` (group predicate ``raw AND NOT ...``) only admits
cells inside the union of its member actions' regions.  Two cubes whose
*ever-regions* are provably disjoint — a shared non-time dimension on
which their grounded value regions never intersect, or time windows that
are :meth:`~repro.spec.ranges.DayWindow.certainly_disjoint` at every
evaluation time — can never exchange a fact through reduction or
synchronization, so their reductions may run shard-parallel.  That claim
is the :class:`IndependenceReport`: the contract future shard-parallel
execution consumes (ROADMAP item 1).

The residual cube admits whatever no group claims and therefore shares a
shard with everything; certificates degrade to "dependent" whenever a
region cannot be grounded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Protocol, Sequence

from ..checks.prover import (
    ProverConfig,
    categorical_regions,
    profiles_overlap,
    region_is_symbolic,
)
from ..core.dimension import Dimension
from ..spec.action import Action, is_time_dimension_type
from ..spec.ranges import DayWindow, profiles_of


@dataclass(frozen=True)
class IndependencePair:
    """Whether two disjoint cubes provably never share a fact region."""

    first: str
    second: str
    independent: bool
    separating_dimensions: tuple[str, ...] = ()
    reason: str = ""

    def to_dict(self) -> dict[str, object]:
        return {
            "first": self.first,
            "second": self.second,
            "independent": self.independent,
            "separating_dimensions": list(self.separating_dimensions),
            "reason": self.reason,
        }


@dataclass
class IndependenceReport:
    """The full certificate: pairwise verdicts plus shard groups."""

    cubes: tuple[str, ...]
    pairs: list[IndependencePair] = field(default_factory=list)
    #: Connected components of the "not provably independent" graph; each
    #: component is one shard whose cubes must reduce together.
    shard_groups: tuple[tuple[str, ...], ...] = ()

    def pair(self, first: str, second: str) -> IndependencePair | None:
        for p in self.pairs:
            if {p.first, p.second} == {first, second}:
                return p
        return None

    def to_dict(self) -> dict[str, object]:
        return {
            "cubes": list(self.cubes),
            "pairs": [p.to_dict() for p in self.pairs],
            "shard_groups": [list(group) for group in self.shard_groups],
        }


@dataclass
class _EverRegion:
    """Sound over-approximation of the bottom cells a cube can ever own."""

    #: Grounded value union per non-time dimension; ``None`` == anything.
    regions: dict[str, frozenset[str] | None]
    windows: tuple[DayWindow, ...]
    #: Residual (or ungroundable) cubes over-approximate to "everything".
    unbounded: bool = False


def _ever_region(
    members: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> _EverRegion:
    if not members:
        return _EverRegion({}, (), unbounded=True)
    regions: dict[str, frozenset[str] | None] = {}
    windows: list[DayWindow] = []
    for action in members:
        for profile in profiles_of(action):
            if not profiles_overlap(profile, profile, dimensions, config):
                continue  # an unsatisfiable disjunct owns nothing
            windows.append(profile.window)
            grounded = categorical_regions(profile, dimensions)
            for name, region in grounded.items():
                if region is None or region_is_symbolic(region):
                    regions[name] = None
                    continue
                current = regions.get(name, frozenset())
                if current is not None:
                    regions[name] = current | region
    return _EverRegion(regions, tuple(windows))


def _time_dimension_name(action: Action) -> str | None:
    for name in action.schema.dimension_names:
        if is_time_dimension_type(action.schema.dimension_type(name)):
            return name
    return None


def _classify_pair(
    first: str,
    second: str,
    a: _EverRegion,
    b: _EverRegion,
    time_dimension: str | None,
) -> IndependencePair:
    if a.unbounded or b.unbounded:
        return IndependencePair(
            first,
            second,
            independent=False,
            reason="a residual or ungroundable cube may own any cell",
        )
    separating: list[str] = []
    for name in sorted(set(a.regions) & set(b.regions)):
        ra = a.regions[name]
        rb = b.regions[name]
        if ra is not None and rb is not None and not (ra & rb):
            separating.append(name)
    if (
        a.windows
        and b.windows
        and all(
            wa.certainly_disjoint(wb) for wa in a.windows for wb in b.windows
        )
        and time_dimension is not None
    ):
        separating.append(time_dimension)
    if separating:
        return IndependencePair(
            first,
            second,
            independent=True,
            separating_dimensions=tuple(separating),
            reason="the cubes' ever-regions are disjoint on: "
            + ", ".join(separating),
        )
    return IndependencePair(
        first,
        second,
        independent=False,
        reason="no dimension provably separates the cubes' ever-regions",
    )


class _CubeLike(Protocol):
    """The slice of ``engine.disjoint.DisjointAction`` the report needs
    (a protocol keeps the analysis layer import-free of the engine)."""

    @property
    def name(self) -> str: ...

    @property
    def members(self) -> tuple[str, ...]: ...


def independence_report(
    cubes: Sequence[_CubeLike],
    actions: Mapping[str, Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> IndependenceReport:
    """Certify pairwise cube independence and derive the shard groups.

    *cubes* is the :func:`repro.engine.disjoint.disjoint_actions` output;
    *actions* maps member action names to their bound actions.
    """
    config = config or ProverConfig()
    time_dimension = None
    for action in actions.values():
        time_dimension = _time_dimension_name(action)
        break
    report = IndependenceReport(tuple(cube.name for cube in cubes))
    ever = {
        cube.name: _ever_region(
            [actions[name] for name in cube.members if name in actions],
            dimensions,
            config,
        )
        for cube in cubes
    }
    names = list(report.cubes)
    for i, first in enumerate(names):
        for second in names[i + 1 :]:
            report.pairs.append(
                _classify_pair(
                    first, second, ever[first], ever[second], time_dimension
                )
            )
    report.shard_groups = _components(names, report.pairs)
    return report


def _components(
    names: Sequence[str], pairs: Sequence[IndependencePair]
) -> tuple[tuple[str, ...], ...]:
    parent = {name: name for name in names}

    def find(name: str) -> str:
        while parent[name] != name:
            parent[name] = parent[parent[name]]
            name = parent[name]
        return name

    for pair in pairs:
        if not pair.independent:
            ra, rb = find(pair.first), find(pair.second)
            if ra != rb:
                parent[rb] = ra
    groups: dict[str, list[str]] = {}
    for name in names:
        groups.setdefault(find(name), []).append(name)
    return tuple(
        tuple(sorted(group)) for _, group in sorted(groups.items())
    )
