"""Static selectivity and cost estimates from hierarchy cardinalities.

For each action the estimator bounds, at the prover's reference time, the
number of bottom cells the predicate admits: materialized days inside the
exact day window times the grounded region size per non-time dimension.
Dividing by the instance's total bottom-cell count gives a selectivity;
the rollup factor — the ratio of bottom-category to target-category
cardinalities along each dimension — bounds the output size after
aggregation.  Every estimate degrades to ``None`` instead of guessing
when a region cannot be grounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..checks.prover import (
    ProverConfig,
    categorical_regions,
    profiles_overlap,
    region_is_symbolic,
)
from ..core.dimension import Dimension
from ..spec.action import Action, is_time_dimension_type
from ..spec.ranges import ConjunctProfile, profiles_of, window_at
from ..timedim.calendar import first_day


@dataclass(frozen=True)
class ActionCost:
    """Static cost estimate of one action (upper bounds, reference time)."""

    action: str
    granularity: tuple[str, ...]
    #: Upper bound on admitted bottom cells; ``None`` when ungroundable.
    admitted_cells: int | None
    total_cells: int | None
    selectivity: float | None
    #: Bottom-to-target cardinality ratio (>= 1).
    rollup_factor: float | None
    #: Upper bound on cells remaining after aggregation to the target.
    output_cells: int | None

    def to_dict(self) -> dict[str, object]:
        return {
            "action": self.action,
            "granularity": list(self.granularity),
            "admitted_cells": self.admitted_cells,
            "total_cells": self.total_cells,
            "selectivity": self.selectivity,
            "rollup_factor": self.rollup_factor,
            "output_cells": self.output_cells,
        }


def _bottom_days(dimension: Dimension) -> list[float]:
    return [
        float(first_day(dimension.bottom_category, value).toordinal())
        for value in dimension.values(dimension.bottom_category)
    ]


def _category_count(dimension: Dimension, category: str) -> int | None:
    try:
        return max(1, len(dimension.values(category)))
    except Exception:
        return None


def _profile_cells(
    profile: ConjunctProfile,
    action: Action,
    dimensions: Mapping[str, Dimension],
    config: ProverConfig,
) -> int | None:
    """Upper bound on bottom cells this disjunct admits at the reference."""
    regions = categorical_regions(profile, dimensions)
    cells = 1
    for name in action.schema.dimension_names:
        dimension = dimensions.get(name)
        if dimension is None:
            return None
        if is_time_dimension_type(action.schema.dimension_type(name)):
            window = window_at(profile, config.reference)
            days = _bottom_days(dimension)
            if window is None:
                cells *= len(days)
            else:
                lo, hi = window
                cells *= sum(1 for day in days if lo <= day <= hi)
            continue
        region = regions.get(name)
        if region_is_symbolic(region):
            return None
        if region is None:
            cells *= len(dimension.values(dimension.bottom_category))
        else:
            cells *= len(region)
    return cells


def estimate_costs(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> tuple[ActionCost, ...]:
    """One static cost estimate per action, in input order."""
    config = config or ProverConfig()
    out: list[ActionCost] = []
    for action in actions:
        out.append(_estimate(action, dimensions, config))
    return tuple(out)


def _estimate(
    action: Action,
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> ActionCost:
    schema = action.schema
    names = schema.dimension_names
    total: int | None = None
    rollup: float | None = None
    admitted: int | None = None
    if dimensions is not None and all(n in dimensions for n in names):
        total = 1
        rollup = 1.0
        for name, target in zip(names, action.cat()):
            dimension = dimensions[name]
            bottom = len(dimension.values(dimension.bottom_category))
            total *= bottom
            target_count = _category_count(dimension, target)
            if rollup is not None and target_count is not None:
                rollup *= max(1.0, bottom / target_count)
            else:
                rollup = None
        admitted = 0
        for profile in profiles_of(action):
            if not profiles_overlap(profile, profile, dimensions, config):
                continue
            cells = _profile_cells(profile, action, dimensions, config)
            if cells is None:
                admitted = None
                break
            admitted += cells
        if admitted is not None and total is not None:
            admitted = min(admitted, total)
    selectivity = None
    if admitted is not None and total:
        selectivity = admitted / total
    output = None
    if admitted is not None and rollup:
        output = math.ceil(admitted / rollup)
    return ActionCost(
        action=action.name,
        granularity=action.cat(),
        admitted_cells=admitted,
        total_cells=total,
        selectivity=selectivity,
        rollup_factor=rollup,
        output_cells=output,
    )
