"""The aggregate-formation operator (Section 6.3, Definition 6).

``a[C1..Cn](O)`` aggregates facts to the categories ``C1..Cn``.  On
reduced MOs some facts may only carry *coarser* values than requested; the
*approach* decides how they are reflected:

* ``AVAILABILITY`` (the paper's choice) — each fact aggregates to the
  finest granularity that is at least the desired one *and* available for
  it; coarse facts keep their own granularity (``Group_high``'s behaviour
  in Figure 5);
* ``STRICT`` — facts coarser than the desired granularity are dropped, so
  the answer has exactly the requested granularity;
* ``LUB`` — one common granularity for the whole answer: the least upper
  bound of the desired granularity and all facts' available granularities.

(The paper's fourth, *disaggregated*, approach imputes detail values and
yields imprecise answers; it cites [13] for it and so do we — it is out of
scope here, documented in DESIGN.md.)
"""

from __future__ import annotations

import enum
from typing import Mapping

from ..core.dimension import Dimension
from ..core.facts import Provenance, aggregate_fact_id
from ..core.hierarchy import TOP
from ..core.mo import MultidimensionalObject
from ..core.schema import FactSchema
from ..errors import QueryError


class AggregationApproach(enum.Enum):
    """Varying-granularity handling of Section 6.3 (see module docs)."""

    STRICT = "strict"
    LUB = "lub"
    AVAILABILITY = "availability"


def aggregate(
    mo: MultidimensionalObject,
    granularity: Mapping[str, str],
    approach: AggregationApproach = AggregationApproach.AVAILABILITY,
) -> MultidimensionalObject:
    """``a[C1..Cn](O)`` under the chosen varying-granularity approach.

    The result's schema restricts each dimension type to the categories at
    or above the requested one (the requested category becomes the new
    bottom), per Definition 6.
    """
    requested = mo.schema.validate_granularity(granularity)
    names = mo.schema.dimension_names

    # Per-fact availability category and grouping value in each dimension.
    per_fact: dict[str, tuple[str, ...]] = {}
    availability_categories: dict[str, set[str]] = {name: set() for name in names}
    for fact_id in mo.facts():
        values: list[str] = []
        skip = False
        for name, category in zip(names, requested):
            dimension = mo.dimensions[name]
            direct = mo.direct_value(fact_id, name)
            available_category, value = _finest_available(
                dimension, direct, category
            )
            if (
                approach is AggregationApproach.STRICT
                and available_category != category
            ):
                skip = True
                break
            availability_categories[name].add(available_category)
            values.append(value)
        if not skip:
            per_fact[fact_id] = tuple(values)

    if approach is AggregationApproach.LUB:
        lub_granularity = tuple(
            mo.dimensions[name].dimension_type.hierarchy.lub(
                availability_categories[name] | {category}
            )
            for name, category in zip(names, requested)
        )
        per_fact = {
            fact_id: tuple(
                mo.dimensions[name].ancestor_at(
                    mo.direct_value(fact_id, name), category
                )
                for name, category in zip(names, lub_granularity)
            )
            for fact_id in per_fact
        }

    result = _result_mo(mo, requested)
    groups: dict[tuple[str, ...], list[str]] = {}
    for fact_id, cell in per_fact.items():
        groups.setdefault(cell, []).append(fact_id)
    for cell, members in groups.items():
        coordinates = dict(zip(names, cell))
        measures = {
            name: mo.measures[name].aggregate_over(members)
            for name in mo.schema.measure_names
        }
        provenance = Provenance()
        for member in members:
            provenance = provenance.merge(mo.provenance(member))
        result.insert_aggregate_fact(
            aggregate_fact_id(cell), coordinates, measures, provenance
        )
    return result


def group_high(
    mo: MultidimensionalObject,
    cell: Mapping[str, str],
    granularity: Mapping[str, str],
) -> frozenset[str]:
    """The paper's ``Group_high`` (Equation 38).

    All facts characterized by every value of *cell* and mapped *directly*
    to those cell values whose category exceeds the requested granularity.
    The direct-mapping requirement is what stops a fact from landing in
    several result groups.
    """
    requested = mo.schema.validate_granularity(granularity)
    facts: set[str] = set()
    for fact_id in mo.facts():
        ok = True
        for name, req_category in zip(mo.schema.dimension_names, requested):
            value = cell.get(name)
            if value is None:
                raise QueryError(f"cell lacks a value for dimension {name!r}")
            dimension = mo.dimensions[name]
            value = dimension.normalize_value(value)
            value_category = dimension.category_of(value)
            if not dimension.dimension_type.hierarchy.le(req_category, value_category):
                raise QueryError(
                    f"Group_high cell value {value!r} is below the requested "
                    f"category {req_category!r} in {name!r}"
                )
            if value_category == req_category:
                if not mo.characterized_by(fact_id, name, value):
                    ok = False
                    break
            else:
                # Higher than requested: the fact must map directly to it.
                if mo.direct_value(fact_id, name) != value:
                    ok = False
                    break
        if ok:
            facts.add(fact_id)
    return frozenset(facts)


def _finest_available(
    dimension: Dimension, direct_value: str, category: str
) -> tuple[str, str]:
    """The finest category ``>= category`` at which the fact has a value,
    with that value (the availability approach's per-fact granularity)."""
    hierarchy = dimension.dimension_type.hierarchy
    own = dimension.category_of(direct_value)
    if own == category or hierarchy.le(own, category):
        ancestor = dimension.try_ancestor_at(direct_value, category)
        if ancestor is not None:
            return category, ancestor
    candidates: list[str] = []
    for candidate in hierarchy:
        if not hierarchy.le(category, candidate):
            continue
        if dimension.try_ancestor_at(direct_value, candidate) is not None:
            candidates.append(candidate)
    if not candidates:  # pragma: no cover - TOP is always reachable
        raise QueryError(
            f"{dimension.name}: no category >= {category!r} available for "
            f"value {direct_value!r}"
        )
    minimal = [
        c
        for c in candidates
        if not any(hierarchy.lt(other, c) for other in candidates)
    ]
    chosen = minimal[0]
    return chosen, dimension.ancestor_at(direct_value, chosen)


def _result_mo(
    mo: MultidimensionalObject, requested: tuple[str, ...]
) -> MultidimensionalObject:
    """A fresh MO whose dimension types restrict to categories >= C_i."""
    new_dimensions: dict[str, Dimension] = {}
    dimension_types = []
    for name, category in zip(mo.schema.dimension_names, requested):
        dimension = mo.dimensions[name]
        hierarchy = dimension.dimension_type.hierarchy
        if category in (hierarchy.bottom, TOP):
            # Bottom: nothing to restrict.  TOP: the model cannot express a
            # dimension with only the top category, so the full dimension is
            # kept and facts simply map to the ALL value.
            new_dimensions[name] = dimension
            dimension_types.append(dimension.dimension_type)
            continue
        keep = [
            c
            for c in hierarchy.user_categories
            if hierarchy.le(category, c)
        ]
        sub = dimension.subdimension(keep)
        new_dimensions[name] = sub
        dimension_types.append(sub.dimension_type)
    schema = FactSchema(
        mo.schema.fact_type, dimension_types, mo.schema.measure_types
    )
    return MultidimensionalObject(schema, new_dimensions)
