"""The *disaggregated* aggregation approach (Section 6.3's fourth option).

The paper lists four ways to handle facts that are coarser than the
requested granularity and implements three, deferring the fourth to
Pedersen et al. [13]: *disaggregate* coarse facts down to the requested
granularity, "yielding imprecise answers".  This module implements it as
the natural extension:

* a coarse fact's measure values are distributed over the requested-level
  cells it covers — uniformly by default, or proportionally to weights
  supplied by the caller (e.g. last year's distribution);
* every result row carries an **imprecision** score: the fraction of its
  value that came from disaggregation rather than exact data.

SUM/COUNT measures distribute; MIN/MAX cannot be meaningfully split, so
each covered cell receives the coarse bound unchanged (still a correct
bound, just loose) and the imprecision score flags it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..core.dimension import ALL_VALUE, Dimension
from ..core.mo import MultidimensionalObject
from ..errors import QueryError

#: Optional caller-supplied allocation weights:
#: (dimension_name, coarse_value, fine_value) -> non-negative weight.
AllocationWeights = Callable[[str, str, str], float]


@dataclass(frozen=True)
class DisaggregatedRow:
    """One result cell of a disaggregated aggregation."""

    cell: tuple[str, ...]
    values: Mapping[str, float]
    #: Per-measure fraction of the value that was imputed (0.0 == exact).
    imprecision: Mapping[str, float]


def aggregate_disaggregated(
    mo: MultidimensionalObject,
    granularity: Mapping[str, str],
    weights: AllocationWeights | None = None,
) -> list[DisaggregatedRow]:
    """``a[C1..Cn](O)`` with coarse facts split down to the requested
    granularity.

    Returns rows sorted by cell.  The grand totals of SUM measures are
    preserved exactly (allocation only moves value between cells); the
    per-cell values are estimates wherever ``imprecision > 0``.
    """
    requested = mo.schema.validate_granularity(dict(granularity))
    names = mo.schema.dimension_names
    sums: dict[tuple[str, ...], dict[str, float]] = {}
    imputed: dict[tuple[str, ...], dict[str, float]] = {}

    for fact_id in mo.facts():
        portions = _allocate(mo, fact_id, names, requested, weights)
        exact = len(portions) == 1 and portions[0][1] == 1.0
        for cell, fraction in portions:
            cell_sums = sums.setdefault(
                cell, {m: 0.0 for m in mo.schema.measure_names}
            )
            cell_imputed = imputed.setdefault(
                cell, {m: 0.0 for m in mo.schema.measure_names}
            )
            for measure_name in mo.schema.measure_names:
                aggregate_name = mo.schema.measure_type(
                    measure_name
                ).aggregate.name
                value = float(mo.measure_value(fact_id, measure_name))
                if aggregate_name in ("sum", "count"):
                    share = value * fraction
                    cell_sums[measure_name] += share
                    if not exact:
                        cell_imputed[measure_name] += share
                elif aggregate_name == "min":
                    cell_sums[measure_name] = (
                        value
                        if cell_sums[measure_name] == 0.0
                        else min(cell_sums[measure_name], value)
                    )
                    if not exact:
                        cell_imputed[measure_name] = cell_sums[measure_name]
                else:  # max
                    cell_sums[measure_name] = max(
                        cell_sums[measure_name], value
                    )
                    if not exact:
                        cell_imputed[measure_name] = cell_sums[measure_name]

    rows: list[DisaggregatedRow] = []
    for cell in sorted(sums):
        values = sums[cell]
        rows.append(
            DisaggregatedRow(
                cell=cell,
                values=dict(values),
                imprecision={
                    m: (imputed[cell][m] / values[m]) if values[m] else 0.0
                    for m in values
                },
            )
        )
    return rows


def _allocate(
    mo: MultidimensionalObject,
    fact_id: str,
    names: tuple[str, ...],
    requested: tuple[str, ...],
    weights: AllocationWeights | None,
) -> list[tuple[tuple[str, ...], float]]:
    """The requested-level cells a fact covers, with allocation fractions.

    A fact fine enough in every dimension yields one cell with fraction
    1.0; a coarse fact yields the product of its per-dimension drill-down
    sets with multiplicative fractions.
    """
    per_dimension: list[list[tuple[str, float]]] = []
    for name, category in zip(names, requested):
        dimension = mo.dimensions[name]
        direct = mo.direct_value(fact_id, name)
        ancestor = dimension.try_ancestor_at(direct, category)
        if ancestor is not None:
            per_dimension.append([(ancestor, 1.0)])
            continue
        fine_values = _downset(dimension, direct, category)
        if not fine_values:
            raise QueryError(
                f"fact {fact_id!r} cannot be disaggregated to "
                f"{name}.{category}: no covered values"
            )
        per_dimension.append(
            _fractions(name, direct, sorted(fine_values), weights)
        )

    cells: list[tuple[tuple[str, ...], float]] = [((), 1.0)]
    for options in per_dimension:
        cells = [
            ((*cell, value), fraction * share)
            for cell, fraction in cells
            for value, share in options
        ]
    return cells


def _downset(
    dimension: Dimension, value: str, category: str
) -> frozenset[str]:
    own = dimension.category_of(value)
    hierarchy = dimension.dimension_type.hierarchy
    if hierarchy.lt(category, own) or value == ALL_VALUE:
        return dimension.descendants_at(value, category)
    # Parallel branch (e.g. a week value asked at month level): go through
    # the common refinement.
    glb = hierarchy.glb({own, category})
    covered: set[str] = set()
    for fine in dimension.descendants_at(value, glb):
        ancestor = dimension.try_ancestor_at(fine, category)
        if ancestor is not None:
            covered.add(ancestor)
    return frozenset(covered)


def _fractions(
    name: str,
    coarse: str,
    fine_values: list[str],
    weights: AllocationWeights | None,
) -> list[tuple[str, float]]:
    if weights is None:
        share = 1.0 / len(fine_values)
        return [(value, share) for value in fine_values]
    raw = [max(0.0, weights(name, coarse, value)) for value in fine_values]
    total = sum(raw)
    if total <= 0.0:
        share = 1.0 / len(fine_values)
        return [(value, share) for value in fine_values]
    return [
        (value, weight / total) for value, weight in zip(fine_values, raw)
    ]
