"""The query algebra over (reduced) MOs — Section 6."""

from .aggregation import AggregationApproach, aggregate, group_high
from .algebra import Query, mo_rows
from .disaggregation import (
    AllocationWeights,
    DisaggregatedRow,
    aggregate_disaggregated,
)
from .compare import (
    Approach,
    ComparisonResult,
    atom_compare,
    atom_result,
    common_category,
    compare,
    drill_down,
    weighted_compare,
)
from .projection import project
from .selection import bind_query_predicate, select, select_weighted

__all__ = [
    "AggregationApproach",
    "AllocationWeights",
    "Approach",
    "DisaggregatedRow",
    "aggregate_disaggregated",
    "ComparisonResult",
    "Query",
    "aggregate",
    "atom_compare",
    "atom_result",
    "bind_query_predicate",
    "common_category",
    "compare",
    "drill_down",
    "group_high",
    "mo_rows",
    "project",
    "select",
    "select_weighted",
    "weighted_compare",
]
