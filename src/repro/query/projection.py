"""The projection operator (Section 6.2, Equation 37).

``pi[D1..Dk][M1..Ml](O)`` retains the named dimensions and measures; the
fact set is unchanged and duplicates are *not* merged — exactly like a
star-schema projection, as the paper notes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.mo import MultidimensionalObject
from ..core.schema import FactSchema
from ..errors import QueryError


def project(
    mo: MultidimensionalObject,
    dimensions: Sequence[str],
    measures: Sequence[str] | None = None,
) -> MultidimensionalObject:
    """``pi[dimensions][measures](O)``.

    *measures* defaults to all measures.  At least one dimension must be
    retained (an MO without dimensions is not meaningful in the model).
    """
    if not dimensions:
        raise QueryError("projection must retain at least one dimension")
    unknown = set(dimensions) - set(mo.schema.dimension_names)
    if unknown:
        raise QueryError(f"projection of unknown dimensions {sorted(unknown)!r}")
    if measures is None:
        measures = list(mo.schema.measure_names)
    unknown_measures = set(measures) - set(mo.schema.measure_names)
    if unknown_measures:
        raise QueryError(
            f"projection of unknown measures {sorted(unknown_measures)!r}"
        )

    keep_dims = [d for d in mo.schema.dimension_names if d in set(dimensions)]
    keep_measures = [m for m in mo.schema.measure_names if m in set(measures)]
    schema = FactSchema(
        mo.schema.fact_type,
        [mo.schema.dimension_type(name) for name in keep_dims],
        [mo.schema.measure_type(name) for name in keep_measures],
    )
    projected = MultidimensionalObject(
        schema, {name: mo.dimensions[name] for name in keep_dims}
    )
    for fact_id in mo.facts():
        coordinates = {
            name: mo.direct_value(fact_id, name) for name in keep_dims
        }
        values = {
            name: mo.measure_value(fact_id, name) for name in keep_measures
        }
        projected.insert_aggregate_fact(
            fact_id, coordinates, values, mo.provenance(fact_id)
        )
    return projected


def retained_names(
    all_names: Iterable[str], requested: Sequence[str]
) -> list[str]:
    """Names from *requested*, in schema order, validated elsewhere."""
    request = set(requested)
    return [name for name in all_names if name in request]
