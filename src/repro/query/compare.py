"""Varying-granularity value comparisons (Definition 5).

When a predicate compares a fact's dimension value ``v'`` to a constant
``v1`` of a *different* category, both are drilled down to the greatest
lower bound of their categories and the resulting value sets are compared.
The paper defines, for drill-down sets ``A`` (from ``v'``) and ``B`` (from
``v1``):

* strict inequalities (``<``, ``>``): for-all/for-all — every element of
  ``A`` must compare to every element of ``B``;
* reflexive inequalities (``<=``, ``>=``): for-all/exists — every element
  of ``A`` must compare to *some* element of ``B``;
* ``=`` / ``!=``: set equality / set inequality of ``A`` and ``B``;
* ``in {v1..vk}``: ``A`` is covered by the union of the ``vi`` drill-downs.

That is the paper's **conservative** approach (its stated choice for
warehouses).  We additionally provide the **liberal** approach (a fact is
returned when *some* possible detailed value satisfies the predicate) and
the **weighted** approach (the fraction of the fact's drill-down values
that satisfy it); the paper names both but leaves them informal, so we
derive them from the same per-element satisfaction test:

* element ``va`` satisfies ``va op v1`` using the paper's quantifier
  pattern on the ``B`` side (for-all for strict ops, exists for reflexive
  ops, membership for ``=`` and ``in``);
* conservative = all elements satisfy, liberal = some element satisfies,
  weight = satisfying fraction.

This keeps ``conservative => weight == 1 => liberal`` as an invariant
(property-tested), with the one documented exception that conservative
``=`` additionally requires ``B`` to be covered by ``A`` (exact set
equality, per the paper's text).
"""

from __future__ import annotations

import enum
from typing import Sequence

from ..core.dimension import ALL_VALUE, Dimension
from ..errors import QueryError


class Approach(enum.Enum):
    """Selection approach of Section 6.1."""

    CONSERVATIVE = "conservative"
    LIBERAL = "liberal"
    WEIGHTED = "weighted"


_ORDER_OPS = {"<", "<=", ">", ">="}
_ALL_OPS = _ORDER_OPS | {"=", "!=", "in"}


def drill_down(dimension: Dimension, value: str, category: str) -> frozenset[str]:
    """The drill-down set of *value* at *category* (``<=`` its own)."""
    own = dimension.category_of(value)
    if own == category:
        return frozenset({value})
    return dimension.descendants_at(value, category)


def common_category(
    dimension: Dimension, left_value: str, right_values: Sequence[str]
) -> str:
    """GLB of the categories of all operands (Equation 33)."""
    hierarchy = dimension.dimension_type.hierarchy
    categories = {dimension.category_of(left_value)}
    categories.update(dimension.category_of(v) for v in right_values)
    return hierarchy.glb(categories)


def compare(
    dimension: Dimension,
    left_value: str,
    op: str,
    right: str | Sequence[str],
    approach: Approach = Approach.CONSERVATIVE,
) -> bool:
    """Evaluate ``left_value op right`` under Definition 5.

    ``right`` is a single value for the comparison operators and a sequence
    of values for ``op == "in"``.
    """
    result = weighted_compare(dimension, left_value, op, right)
    if approach is Approach.CONSERVATIVE:
        return result.conservative
    if approach is Approach.LIBERAL:
        return result.liberal
    return result.weight > 0.0


class ComparisonResult:
    """Outcome of one varying-granularity comparison, all approaches."""

    __slots__ = ("conservative", "liberal", "weight")

    def __init__(self, conservative: bool, liberal: bool, weight: float) -> None:
        self.conservative = conservative
        self.liberal = liberal
        self.weight = weight

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ComparisonResult(conservative={self.conservative}, "
            f"liberal={self.liberal}, weight={self.weight:.3f})"
        )


def weighted_compare(
    dimension: Dimension,
    left_value: str,
    op: str,
    right: str | Sequence[str],
) -> ComparisonResult:
    """Full Definition 5 evaluation returning all three approaches at once."""
    if op not in _ALL_OPS:
        raise QueryError(f"unknown comparison operator {op!r}")
    right_values = _right_values(op, right)
    for value in (left_value, *right_values):
        dimension.category_of(value)  # validate

    own = dimension.category_of(left_value)
    right_categories = {dimension.category_of(v) for v in right_values}

    # Fast path: everything in one category — compare directly.
    if right_categories == {own}:
        return _same_category(dimension, own, left_value, op, right_values)

    glb = common_category(dimension, left_value, list(right_values))
    left_set = drill_down(dimension, left_value, glb)
    right_sets = [drill_down(dimension, v, glb) for v in right_values]
    if not left_set:
        # A value with an empty extension at the GLB (possible in sparse
        # dimensions) vacuously satisfies the for-all patterns; we instead
        # treat it as unknowable: not conservative, not liberal.
        return ComparisonResult(False, False, 0.0)

    key = lambda v: dimension.sort_value(glb, v)  # noqa: E731 - local shorthand

    if op == "in":
        union: set[str] = set()
        for rs in right_sets:
            union.update(rs)
        satisfied = [v for v in left_set if v in union]
    elif op == "=":
        b = right_sets[0]
        satisfied = [v for v in left_set if v in b]
    elif op == "!=":
        b = right_sets[0]
        satisfied = [v for v in left_set if v not in b]
    else:
        b = right_sets[0]
        if not b:
            return ComparisonResult(False, False, 0.0)
        b_keys = [key(v) for v in b]
        b_min, b_max = min(b_keys), max(b_keys)
        if op == "<":
            satisfied = [v for v in left_set if key(v) < b_min]
        elif op == "<=":
            satisfied = [v for v in left_set if key(v) <= b_max]
        elif op == ">":
            satisfied = [v for v in left_set if key(v) > b_max]
        else:  # ">="
            satisfied = [v for v in left_set if key(v) >= b_min]

    weight = len(satisfied) / len(left_set)
    conservative = weight == 1.0
    if op == "=":
        # Paper: the two drill-down sets must be *identical*.
        conservative = conservative and right_sets[0] <= left_set
    if op == "!=":
        # Paper: set inequality.  Weight/liberal still use per-element
        # exclusion, which is the natural uncertainty reading.
        conservative = left_set != right_sets[0]
    liberal = weight > 0.0 or (op == "!=" and conservative)
    return ComparisonResult(conservative, liberal, weight)


def _same_category(
    dimension: Dimension,
    category: str,
    left_value: str,
    op: str,
    right_values: tuple[str, ...],
) -> ComparisonResult:
    if op == "in":
        ok = left_value in right_values
    elif op == "=":
        ok = left_value == right_values[0]
    elif op == "!=":
        ok = left_value != right_values[0]
    else:
        lk = dimension.sort_value(category, left_value)
        rk = dimension.sort_value(category, right_values[0])
        ok = {
            "<": lk < rk,
            "<=": lk <= rk,
            ">": lk > rk,
            ">=": lk >= rk,
        }[op]
    weight = 1.0 if ok else 0.0
    return ComparisonResult(ok, ok, weight)


def _right_values(op: str, right: str | Sequence[str]) -> tuple[str, ...]:
    if op == "in":
        if isinstance(right, str):
            raise QueryError("'in' comparisons need a sequence of values")
        values = tuple(right)
        if not values:
            raise QueryError("'in' comparisons need at least one value")
        return values
    if not isinstance(right, str):
        raise QueryError(f"operator {op!r} compares against a single value")
    return (right,)


def values_satisfying(
    dimension: Dimension,
    category: str,
    op: str,
    right: str | Sequence[str],
    approach: Approach = Approach.CONSERVATIVE,
) -> frozenset[str]:
    """All values of *category* satisfying ``v op right`` — the building
    block for the paper's ``Pred(a, t)`` cell enumeration."""
    return frozenset(
        v
        for v in dimension.values(category)
        if compare(dimension, v, op, right, approach)
    )


# ----------------------------------------------------------------------
# Predicate-atom evaluation against a fact's direct value
# ----------------------------------------------------------------------
#
# Predicate constants (query literals, evaluated NOW-terms) need not be
# materialized in the dimension: in a sparse Time dimension the month
# denoted by ``NOW - 6 months`` may hold no facts at all.  The helpers
# below therefore represent the right-hand side as an *extent* — a
# containment test plus min/max sort keys at the comparison category —
# computed from the dimension when the value is materialized and from
# calendar arithmetic when it is a time value that is not.

class _Extent:
    """Right-hand-side drill-down at the GLB category, possibly virtual."""

    __slots__ = ("min_key", "max_key", "_members", "_day_range")

    def __init__(
        self,
        min_key: object,
        max_key: object,
        members: frozenset[str] | None,
        day_range: tuple[int, int] | None,
    ) -> None:
        self.min_key = min_key
        self.max_key = max_key
        self._members = members
        self._day_range = day_range

    def contains(self, dimension: Dimension, glb: str, value: str) -> bool:
        if self._members is not None:
            return value in self._members
        if self._day_range is not None:
            from ..timedim.calendar import first_day, last_day

            lo, hi = self._day_range
            return (
                first_day(glb, value).toordinal() >= lo
                and last_day(glb, value).toordinal() <= hi
            )
        return False

    @property
    def exact(self) -> bool:
        """Whether the member set is known exactly (materialized)."""
        return self._members is not None

    @property
    def members(self) -> frozenset[str]:
        return self._members if self._members is not None else frozenset()


def _constant_extent(
    dimension: Dimension, value: str, category: str, glb: str
) -> _Extent | None:
    """Extent of constant *value* (of *category*) at *glb*, or ``None``
    when the comparison cannot be decided."""
    from ..timedim.calendar import first_day, last_day, ordinal, parse_value
    from ..timedim.granularity import is_time_category

    if value in dimension and dimension.category_of(value) == category:
        members = drill_down(dimension, value, glb)
        if not members:
            return None
        keys = [dimension.sort_value(glb, v) for v in members]
        return _Extent(min(keys), max(keys), frozenset(members), None)
    if category == glb:
        # Singleton at the comparison category; works for unmaterialized
        # constants because sort keys are computable from the value alone.
        if is_time_category(category):
            value = parse_value(category, value)
        key = dimension.sort_value(glb, value)
        return _Extent(key, key, frozenset({value}), None)
    if is_time_category(category) and is_time_category(glb):
        lo = first_day(category, value)
        hi = last_day(category, value)
        min_key = ordinal(glb, _value_at_or_same(lo, glb))
        max_key = ordinal(glb, _value_at_or_same(hi, glb))
        return _Extent(min_key, max_key, None, (lo.toordinal(), hi.toordinal()))
    return None


def _value_at_or_same(date, glb: str) -> str:
    from ..timedim.calendar import value_at

    return value_at(date, glb)


def atom_result(
    dimension: Dimension,
    direct_value: str,
    category: str,
    op: str,
    right: str | Sequence[str],
) -> ComparisonResult:
    """Definition 5 evaluation of one predicate atom at *category*.

    *direct_value* is the value a fact maps to directly; the atom compares
    the fact at *category* against constant(s) *right* of that category.
    The fast path rolls the fact up when its data is fine enough; otherwise
    the drill-down machinery decides, with calendar arithmetic standing in
    for unmaterialized time constants.
    """
    if op not in _ALL_OPS:
        raise QueryError(f"unknown comparison operator {op!r}")
    rights = _right_values(op, right)
    if direct_value == ALL_VALUE:
        # "Unknown in this dimension" can never certainly satisfy an atom
        # but always might.
        return ComparisonResult(False, True, 0.0)

    ancestor = dimension.try_ancestor_at(direct_value, category)
    if ancestor is not None:
        return _same_category_vs_constants(dimension, category, ancestor, op, rights)

    own = dimension.category_of(direct_value)
    hierarchy = dimension.dimension_type.hierarchy
    glb = hierarchy.glb({own, category})
    left_set = drill_down(dimension, direct_value, glb)
    if not left_set:
        return ComparisonResult(False, False, 0.0)
    extents = [
        _constant_extent(dimension, value, category, glb) for value in rights
    ]
    if any(extent is None for extent in extents):
        return ComparisonResult(False, True, 0.0)

    key = lambda v: dimension.sort_value(glb, v)  # noqa: E731 - local shorthand
    if op == "in":
        satisfied = [
            v
            for v in left_set
            if any(e.contains(dimension, glb, v) for e in extents)
        ]
    elif op == "=":
        satisfied = [
            v for v in left_set if extents[0].contains(dimension, glb, v)
        ]
    elif op == "!=":
        satisfied = [
            v for v in left_set if not extents[0].contains(dimension, glb, v)
        ]
    else:
        extent = extents[0]
        if op == "<":
            satisfied = [v for v in left_set if key(v) < extent.min_key]
        elif op == "<=":
            satisfied = [v for v in left_set if key(v) <= extent.max_key]
        elif op == ">":
            satisfied = [v for v in left_set if key(v) > extent.max_key]
        else:  # ">="
            satisfied = [v for v in left_set if key(v) >= extent.min_key]

    weight = len(satisfied) / len(left_set)
    conservative = weight == 1.0
    if op == "=":
        conservative = (
            conservative
            and extents[0].exact
            and extents[0].members <= left_set
        )
    if op == "!=":
        # Paper semantics: the drill-down sets must differ.  Provable when
        # some left element lies outside the constant's extent, or when the
        # constant's member set is known exactly and is not left_set.
        some_outside = weight > 0.0
        conservative = some_outside or (
            extents[0].exact and extents[0].members != left_set
        )
    liberal = weight > 0.0 or (op == "!=" and conservative)
    return ComparisonResult(conservative, liberal, weight)


def _same_category_vs_constants(
    dimension: Dimension,
    category: str,
    value: str,
    op: str,
    rights: tuple[str, ...],
) -> ComparisonResult:
    """Same-category comparison where constants may be unmaterialized."""
    from ..timedim.calendar import parse_value
    from ..timedim.granularity import is_time_category

    if is_time_category(category):
        rights = tuple(parse_value(category, r) for r in rights)
    if op == "in":
        ok = value in rights
    elif op == "=":
        ok = value == rights[0]
    elif op == "!=":
        ok = value != rights[0]
    else:
        lk = dimension.sort_value(category, value)
        rk = dimension.sort_value(category, rights[0])
        ok = {"<": lk < rk, "<=": lk <= rk, ">": lk > rk, ">=": lk >= rk}[op]
    return ComparisonResult(ok, ok, 1.0 if ok else 0.0)


def atom_compare(
    dimension: Dimension,
    direct_value: str,
    category: str,
    op: str,
    right: str | Sequence[str],
    approach: Approach = Approach.CONSERVATIVE,
) -> bool:
    """Boolean form of :func:`atom_result` under the chosen approach."""
    result = atom_result(dimension, direct_value, category, op, right)
    if approach is Approach.CONSERVATIVE:
        return result.conservative
    if approach is Approach.LIBERAL:
        return result.liberal
    return result.weight > 0.0
