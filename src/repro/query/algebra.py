"""A small fluent facade over the Section 6 operators.

The paper's language is deliberately no more powerful than commercial OLAP
tools: selection, projection, aggregate formation.  :class:`Query` chains
them lazily and exposes the results as plain rows for reports and
benchmarks::

    rows = (
        Query()
        .select("Time.month <= '2000/05'")
        .aggregate({"Time": "month", "URL": "domain_grp"})
        .project(["Time", "URL"], ["Number_of"])
        .rows(mo, now)
    )
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.mo import MultidimensionalObject
from .aggregation import AggregationApproach, aggregate
from .compare import Approach
from .projection import project
from .selection import select


@dataclass(frozen=True)
class _Step:
    kind: str
    payload: tuple


class Query:
    """An immutable pipeline of selection/aggregation/projection steps."""

    def __init__(self, steps: tuple[_Step, ...] = ()) -> None:
        self._steps = steps

    def select(
        self, predicate: str, approach: Approach = Approach.CONSERVATIVE
    ) -> "Query":
        return Query((*self._steps, _Step("select", (predicate, approach))))

    def aggregate(
        self,
        granularity: Mapping[str, str],
        approach: AggregationApproach = AggregationApproach.AVAILABILITY,
    ) -> "Query":
        return Query(
            (*self._steps, _Step("aggregate", (dict(granularity), approach)))
        )

    def project(
        self,
        dimensions: Sequence[str],
        measures: Sequence[str] | None = None,
    ) -> "Query":
        return Query(
            (*self._steps, _Step("project", (tuple(dimensions), measures)))
        )

    def run(
        self, mo: MultidimensionalObject, now: _dt.date
    ) -> MultidimensionalObject:
        """Apply the pipeline to *mo* at evaluation time *now*."""
        current = mo
        for step in self._steps:
            if step.kind == "select":
                predicate, approach = step.payload
                current = select(current, predicate, now, approach)
            elif step.kind == "aggregate":
                granularity, approach = step.payload
                current = aggregate(current, granularity, approach)
            else:
                dimensions, measures = step.payload
                current = project(current, list(dimensions), measures)
        return current

    def rows(
        self, mo: MultidimensionalObject, now: _dt.date
    ) -> list[dict[str, object]]:
        """Run the pipeline and flatten the result MO into report rows."""
        return mo_rows(self.run(mo, now))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Query({[s.kind for s in self._steps]!r})"


def mo_rows(mo: MultidimensionalObject) -> list[dict[str, object]]:
    """One dict per fact: dimension values, measures, and granularity."""
    rows: list[dict[str, object]] = []
    for fact_id in sorted(mo.facts()):
        row: dict[str, object] = {"fact": fact_id}
        for name in mo.schema.dimension_names:
            row[name] = mo.direct_value(fact_id, name)
        for name in mo.schema.measure_names:
            row[name] = mo.measure_value(fact_id, name)
        row["granularity"] = mo.gran(fact_id)
        rows.append(row)
    return rows
