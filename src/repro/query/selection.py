"""The selection operator over reduced MOs (Section 6.1, Equation 36).

``o[p](O)`` restricts the fact set to facts characterized by values on
which the predicate evaluates to true.  With reduced data the predicate's
category may be unavailable for some facts; the *approach* decides what
happens then:

* ``CONSERVATIVE`` (the paper's choice) — only facts *known* to satisfy;
* ``LIBERAL`` — all facts that *might* satisfy;
* ``WEIGHTED`` — the liberal answer with a certainty weight per fact
  (:func:`select_weighted`).
"""

from __future__ import annotations

import datetime as _dt

from typing import TYPE_CHECKING

from ..core.mo import MultidimensionalObject
from .compare import Approach

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..spec.ast import Predicate


def bind_query_predicate(
    mo: MultidimensionalObject, predicate: "Predicate | str"
) -> "Predicate":
    """Parse/validate a query predicate against the MO's schema."""
    # Imported lazily: the spec package itself builds on this package's
    # comparison semantics, so a module-level import would be circular.
    from ..spec.action import _bind_predicate
    from ..spec.parser import parse_predicate

    if isinstance(predicate, str):
        predicate = parse_predicate(predicate)
    return _bind_predicate(mo.schema, predicate, "query")


def select(
    mo: MultidimensionalObject,
    predicate: "Predicate | str",
    now: _dt.date,
    approach: Approach = Approach.CONSERVATIVE,
) -> MultidimensionalObject:
    """``o[p](O)``: the sub-MO of facts satisfying *predicate* at *now*.

    Dimensions and schema stay the same; fact-dimension relations and
    measures are restricted accordingly (Equation 36).
    """
    from ..spec.predicate import satisfies

    bound = bind_query_predicate(mo, predicate)
    keep = [
        fact_id
        for fact_id in mo.facts()
        if satisfies(mo, fact_id, bound, now, approach)
    ]
    return mo.restrict_to_facts(keep)


def select_weighted(
    mo: MultidimensionalObject,
    predicate: "Predicate | str",
    now: _dt.date,
) -> tuple[MultidimensionalObject, dict[str, float]]:
    """The weighted approach: the liberal answer plus per-fact weights.

    A fact's weight is the fraction of its possible detailed values that
    satisfy the predicate (1.0 on the conservative answer); facts with
    weight 0 are omitted.
    """
    from ..spec.predicate import satisfaction_weight

    bound = bind_query_predicate(mo, predicate)
    weights: dict[str, float] = {}
    for fact_id in mo.facts():
        def value_of(dimension_name: str, _fid: str = fact_id) -> str:
            return mo.direct_value(_fid, dimension_name)

        weight = satisfaction_weight(bound, value_of, mo.dimensions, now)
        if weight > 0.0:
            weights[fact_id] = weight
    return mo.restrict_to_facts(weights), weights
