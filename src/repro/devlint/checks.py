"""The RL rule implementations: AST checks over the repro tree.

Per-module rules (``RL001``–``RL004``) scope themselves by path — the
serving layer for event-loop discipline, the worker-imported packages
for fork hygiene, the deterministic-replay modules for clock/randomness
— so a fixture corpus that mirrors the layout exercises them without
special configuration.  Tree-wide rules (``RL005``/``RL006``) need the
whole module collection plus the docs/tests ground truth from
:class:`~repro.devlint.model.SelfCheckConfig`.

Every check is a pure function from parsed sources to
:class:`~repro.lint.diagnostics.Diagnostic` values; suppression
filtering happens in :mod:`repro.devlint.engine`.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..lint.diagnostics import Diagnostic, Region
from .model import PyModule, SelfCheckConfig
from .rules import RULES

# ---------------------------------------------------------------------------
# Shared AST helpers
# ---------------------------------------------------------------------------


def _dotted(node: ast.expr) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _region(node: ast.AST) -> Region:
    end_line = getattr(node, "end_lineno", None) or node.lineno
    end_col = getattr(node, "end_col_offset", None)
    if end_col is None:
        end_col = node.col_offset + 1
    return Region(node.lineno, node.col_offset + 1, end_line, end_col + 1)


def _diag(code: str, module: PyModule, node: ast.AST, message: str) -> Diagnostic:
    rule = RULES[code]
    return Diagnostic(
        code=code,
        severity=rule.severity,
        message=message,
        file=module.rel,
        region=_region(node),
        hint=rule.hint,
    )


def _functions_of(tree: ast.Module) -> dict[str, list[ast.AST]]:
    """Every (async) function definition in *tree*, keyed by bare name.

    Methods of different classes share a key; for reachability that
    over-approximates (a false edge at worst), which is the right bias
    for a safety lint.
    """
    out: dict[str, list[ast.AST]] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.setdefault(node.name, []).append(node)
    return out


def _own_statements(fn: ast.AST) -> Iterator[ast.AST]:
    """Nodes of *fn*'s own body, not descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # separate scope: to_thread targets, callbacks
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _referenced_names(nodes: Iterable[ast.AST]) -> set[str]:
    out: set[str] = set()
    for node in nodes:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                out.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                out.add(sub.attr)
    return out


# ---------------------------------------------------------------------------
# RL001 — blocking calls reachable from async defs in the serving layer
# ---------------------------------------------------------------------------

#: Module-function calls that park the calling thread (and with it, the
#: event loop, when the caller is a coroutine).
_BLOCKING_DOTTED = {
    "time.sleep",
    "os.fsync",
    "os.replace",
    "os.rename",
    "os.link",
    "os.remove",
    "os.unlink",
    "socket.socket",
    "socket.create_connection",
    "shutil.rmtree",
    "shutil.copyfile",
}
#: Builtins that perform file I/O.
_BLOCKING_BARE = {"open"}
#: Method names of the durable engine's write path (journal appends and
#: snapshot publication fsync/rename under the hood).
_BLOCKING_METHOD_PREFIXES = ("_journal_",)
_BLOCKING_METHODS = {"fsync", "write_snapshot"}


def _blocking_reason(call: ast.Call) -> str | None:
    dotted = _dotted(call.func)
    if dotted is not None:
        if dotted in _BLOCKING_DOTTED or dotted in _BLOCKING_BARE:
            return dotted
        last = dotted.rsplit(".", 1)[-1]
        if last in _BLOCKING_METHODS or last.startswith(
            _BLOCKING_METHOD_PREFIXES
        ):
            return dotted
    return None


def check_blocking_async(module: PyModule) -> list[Diagnostic]:
    """RL001: the serving event loop must never run blocking calls."""
    if "serving" not in module.segments:
        return []
    functions = _functions_of(module.tree)

    # Per function: its own blocking call sites and its local call edges.
    blocking: dict[str, list[tuple[ast.Call, str]]] = {}
    edges: dict[str, set[str]] = {}
    for name, defs in functions.items():
        for fn in defs:
            for node in _own_statements(fn):
                if not isinstance(node, ast.Call):
                    continue
                reason = _blocking_reason(node)
                if reason is not None:
                    blocking.setdefault(name, []).append((node, reason))
                    continue
                target = None
                if isinstance(node.func, ast.Name):
                    target = node.func.id
                elif isinstance(node.func, ast.Attribute) and isinstance(
                    node.func.value, ast.Name
                ) and node.func.value.id in ("self", "cls"):
                    target = node.func.attr
                if target in functions:
                    edges.setdefault(name, set()).add(target)

    out: list[Diagnostic] = []
    reported: set[int] = set()
    for name, defs in functions.items():
        if not any(isinstance(fn, ast.AsyncFunctionDef) for fn in defs):
            continue
        # Reachability from this async entry point over direct local
        # calls only — a function *referenced* (handed to to_thread or
        # run_in_executor) is not called on the loop, so no edge exists.
        seen = {name}
        queue = [name]
        while queue:
            current = queue.pop()
            for node, reason in blocking.get(current, ()):
                if id(node) in reported:
                    continue
                reported.add(id(node))
                via = "" if current == name else f" via {current}()"
                out.append(
                    _diag(
                        "RL001",
                        module,
                        node,
                        f"blocking call {reason}() reachable from "
                        f"async def {name}(){via}; the event loop stalls "
                        "for its full duration",
                    )
                )
            for callee in edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    queue.append(callee)
    return out


# ---------------------------------------------------------------------------
# RL002 — fork-unsafe module-level caches in worker-imported packages
# ---------------------------------------------------------------------------

#: Packages imported inside forked shard workers (directly or via the
#: task payload); caches here survive the fork and must be registered.
_WORKER_PACKAGES = {"core", "spec", "engine", "reduction", "parallel", "timedim"}

_CACHE_NAME_RE = re.compile(r"(?i)cache|memo|instances")
_CACHE_FACTORIES = {
    "dict",
    "list",
    "set",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "WeakSet",
    "WeakValueDictionary",
    "WeakKeyDictionary",
}
_CACHE_DECORATORS = {
    "lru_cache",
    "functools.lru_cache",
    "cache",
    "functools.cache",
}


def _is_cache_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Call):
        node = node.func
    return _dotted(node) in _CACHE_DECORATORS


def _is_mutable_container(value: ast.expr | None) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set)):
        return True
    if isinstance(value, ast.Call):
        dotted = _dotted(value.func)
        if dotted is not None:
            return dotted.rsplit(".", 1)[-1] in _CACHE_FACTORIES
    return False


def _module_caches(module: PyModule) -> list[tuple[str, ast.AST, str]]:
    """(name, node, kind) of every module-level cache in *module*."""
    out: list[tuple[str, ast.AST, str]] = []
    for node in module.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(_is_cache_decorator(d) for d in node.decorator_list):
                out.append((node.name, node, "memoized function"))
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (
                    isinstance(target, ast.Name)
                    and _CACHE_NAME_RE.search(target.id)
                    and _is_mutable_container(node.value)
                ):
                    out.append((target.id, node, "module-level container"))
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and _CACHE_NAME_RE.search(node.target.id)
                and _is_mutable_container(node.value)
            ):
                out.append((node.target.id, node, "module-level container"))
        elif isinstance(node, ast.ClassDef):
            for stmt in node.body:
                if isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ) and any(
                    _is_cache_decorator(d) for d in stmt.decorator_list
                ):
                    out.append(
                        (stmt.name, stmt, "memoized method")
                    )
    return out


def _swept_names(module: PyModule) -> set[str]:
    """Names the module's registered fork sweep can reach.

    Ground truth is the ``register_cache(...)`` calls: every local
    function they reference (clearer, size probe) is an entry point;
    the sweep set is the closure of names those functions mention,
    expanded through module-level aliases (e.g. a ``_CACHED_FUNCTIONS``
    tuple listing the memoized functions the clearer iterates).
    """
    functions = _functions_of(module.tree)
    entry: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted is not None and dotted.rsplit(".", 1)[-1] == (
                "register_cache"
            ):
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if isinstance(arg, ast.Name):
                        entry.add(arg.id)

    # Module-level aliases: global name -> names its value references.
    aliases: dict[str, set[str]] = {}
    for node in module.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and value is not None:
                aliases[target.id] = _referenced_names([value])

    swept = set(entry)
    frontier = set(entry)
    while frontier:
        name = frontier.pop()
        for fn in functions.get(name, ()):
            for referenced in _referenced_names([fn]):
                if referenced not in swept:
                    swept.add(referenced)
                    frontier.add(referenced)
        for referenced in aliases.get(name, ()):
            if referenced not in swept:
                swept.add(referenced)
                frontier.add(referenced)
    return swept


def check_fork_caches(module: PyModule) -> list[Diagnostic]:
    """RL002: forked workers must not inherit unsweepable caches."""
    if not _WORKER_PACKAGES & set(module.segments):
        return []
    caches = _module_caches(module)
    if not caches:
        return []
    swept = _swept_names(module)
    out = []
    for name, node, kind in caches:
        if name in swept:
            continue
        out.append(
            _diag(
                "RL002",
                module,
                node,
                f"{kind} {name!r} is not reachable from any "
                "register_cache(...) clearer in this module; forked "
                "shard workers inherit it populated",
            )
        )
    return out


# ---------------------------------------------------------------------------
# RL003 — mutation of frozen snapshot state outside the snapshot module
# ---------------------------------------------------------------------------


def _snapshotish(part: str) -> bool:
    return part in ("snapshot", "snap", "_snapshot") or part.endswith(
        "_snapshot"
    )


def _base_chain(node: ast.expr) -> list[str]:
    """Name parts of the object being mutated (``x.y[k].z`` -> x, y, z)."""
    parts: list[str] = []
    while True:
        if isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Name):
            parts.append(node.id)
            return parts
        else:
            return parts


def check_snapshot_mutation(module: PyModule) -> list[Diagnostic]:
    """RL003: published snapshots are immutable outside snapshots.py."""
    if module.basename == "snapshots.py":
        return []
    out: list[Diagnostic] = []
    for node in ast.walk(module.tree):
        targets: list[ast.expr]
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = node.targets
        else:
            continue
        for target in targets:
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            chain = _base_chain(target.value)
            hit = next((p for p in chain if _snapshotish(p)), None)
            if hit is not None:
                out.append(
                    _diag(
                        "RL003",
                        module,
                        node,
                        f"assignment mutates state of {hit!r}, which "
                        "names a published snapshot; versions are "
                        "frozen at publish",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RL004 — nondeterminism in deterministic-replay modules
# ---------------------------------------------------------------------------

#: Modules whose behaviour must replay bit-identically from a seed (the
#: fault injector, circuit breaker, shard executor, durable engine).
_REPLAY_BASENAMES = {"breaker.py", "faults.py", "executor.py", "durable.py"}

_CLOCK_ROOTS = {"datetime", "date", "_dt", "dt"}


def _nondet_reason(call: ast.Call) -> str | None:
    dotted = _dotted(call.func)
    if dotted is None:
        return None
    parts = dotted.split(".")
    if dotted == "time.time":
        return "wall-clock time.time()"
    if parts[-1] in ("now", "today", "utcnow") and (
        set(parts[:-1]) & _CLOCK_ROOTS
    ):
        return f"wall-clock {dotted}()"
    if parts[0] == "random" and len(parts) > 1:
        if parts[-1] == "Random":
            if not call.args and not call.keywords:
                return "unseeded random.Random()"
            return None
        return f"shared-state random.{parts[-1]}()"
    return None


def check_nondeterminism(module: PyModule) -> list[Diagnostic]:
    """RL004: replayed modules take clocks and seeds as parameters."""
    if module.basename not in _REPLAY_BASENAMES:
        return []
    out = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            reason = _nondet_reason(node)
            if reason is not None:
                out.append(
                    _diag(
                        "RL004",
                        module,
                        node,
                        f"{reason} in a deterministic-replay module; "
                        "fault schedules and recovery traces must "
                        "replay from the recorded seed alone",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RL005 — telemetry drift (tree-wide)
# ---------------------------------------------------------------------------

METRIC_NAME_RE = re.compile(r"repro_[a-z0-9]+(?:_[a-z0-9]+)+")


def _is_registry(module: PyModule) -> bool:
    return module.basename == "telemetry.py" or "obs" in module.segments


def _metric_constants(module: PyModule) -> Iterator[tuple[str, ast.AST]]:
    """Module-level ``NAME = "repro_..."`` declarations."""
    for node in module.tree.body:
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            value = node.value
        if (
            isinstance(value, ast.Constant)
            and isinstance(value.value, str)
            and METRIC_NAME_RE.fullmatch(value.value)
        ):
            yield value.value, node


def _metric_literals(module: PyModule) -> Iterator[tuple[str, ast.AST]]:
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and METRIC_NAME_RE.fullmatch(node.value)
        ):
            yield node.value, node


def check_telemetry(
    modules: list[PyModule], config: SelfCheckConfig
) -> list[Diagnostic]:
    """RL005: one registry declaration per metric, and docs that match."""
    out: list[Diagnostic] = []
    declared: dict[str, list[tuple[PyModule, ast.AST]]] = {}
    for module in modules:
        if not _is_registry(module):
            continue
        for name, node in _metric_constants(module):
            declared.setdefault(name, []).append((module, node))

    for module in modules:
        if _is_registry(module):
            continue
        for name, node in _metric_literals(module):
            if name in declared:
                message = (
                    f"metric literal {name!r} duplicates its registry "
                    "declaration; import the constant instead"
                )
            else:
                message = (
                    f"metric literal {name!r} is declared in no "
                    "telemetry/obs registry module"
                )
            out.append(_diag("RL005", module, node, message))

    for name, sites in declared.items():
        if len(sites) > 1:
            for module, node in sites:
                out.append(
                    _diag(
                        "RL005",
                        module,
                        node,
                        f"metric {name!r} is declared in "
                        f"{len(sites)} registry modules; exactly one "
                        "may own it",
                    )
                )

    if config.docs_path is not None:
        docs_text = config.docs_path.read_text(encoding="utf-8")
        for name, sites in declared.items():
            if name not in docs_text:
                module, node = sites[0]
                out.append(
                    _diag(
                        "RL005",
                        module,
                        node,
                        f"metric {name!r} is missing from "
                        f"{config.docs_path.name}",
                    )
                )
    return out


# ---------------------------------------------------------------------------
# RL006 — failpoint coverage (tree-wide)
# ---------------------------------------------------------------------------

_CATALOG_NAMES = (
    "FAILPOINTS",
    "SHARD_FAILPOINTS",
    "SERVING_FAILPOINTS",
    "INGEST_FAILPOINTS",
)


def _catalogs(module: PyModule) -> Iterator[tuple[str, ast.expr]]:
    for node in module.tree.body:
        target: ast.expr | None = None
        value: ast.expr | None = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target, value = node.target, node.value
        if (
            isinstance(target, ast.Name)
            and target.id in _CATALOG_NAMES
            and isinstance(value, (ast.Tuple, ast.List, ast.Set))
        ):
            yield target.id, value


def _word_present(word: str, text: str) -> bool:
    return (
        re.search(
            rf"(?<![A-Za-z0-9_]){re.escape(word)}(?![A-Za-z0-9_])", text
        )
        is not None
    )


def check_failpoints(
    modules: list[PyModule], config: SelfCheckConfig
) -> list[Diagnostic]:
    """RL006: every registered failpoint is exercised by some test."""
    if config.tests_path is None:
        return []
    texts = []
    for path in sorted(config.tests_path.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        texts.append(path.read_text(encoding="utf-8"))
    tests_text = "\n".join(texts)

    out: list[Diagnostic] = []
    for module in modules:
        for catalog_name, value in _catalogs(module):
            # Iterating the catalog variable in a test (e.g.
            # ``for name in FAILPOINTS``) covers every entry at once.
            if _word_present(catalog_name, tests_text):
                continue
            for element in value.elts:
                if not (
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                ):
                    continue
                if element.value in tests_text:
                    continue
                out.append(
                    _diag(
                        "RL006",
                        module,
                        element,
                        f"failpoint {element.value!r} "
                        f"({catalog_name}) is never exercised by any "
                        "test under "
                        f"{config.tests_path.name}/",
                    )
                )
    return out
