"""Self-analysis of the reproduction: the ``RL`` concurrency-safety lint.

The spec lint (:mod:`repro.lint`) checks the *inputs* of the system;
this package checks the *system*.  ``run_selfcheck`` parses the repro
tree with :mod:`ast` and enforces the invariants the serving, parallel,
and durability layers depend on — no blocking calls on the event loop,
fork-swept caches, immutable published snapshots, injectable clocks and
seeds, a single registry per metric, and test coverage for every
failpoint.  Findings reuse the lint diagnostic model, so the text,
JSON, and SARIF reporters apply unchanged (``repro selfcheck``).

Runtime companions to the static rules live in :mod:`repro.sanitize`
(``REPRO_SANITIZE=mutation,block,fork``).
"""

from .engine import run_selfcheck
from .model import SelfCheckConfig
from .rules import RULES

__all__ = ["RULES", "SelfCheckConfig", "run_selfcheck"]
