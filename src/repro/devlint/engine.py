"""The self-check driver: load a tree, run every RL rule, filter.

``run_selfcheck`` is the single entry point the CLI and the tests use.
It parses every Python file under the given paths, runs the per-module
rules on each, the tree-wide rules on the collection, drops findings
silenced by an inline ``# devlint: allow[RLxxx] reason`` on the same
line, and returns a sorted :class:`~repro.lint.diagnostics.LintResult`
— the same aggregate the spec lint produces, so all three reporters
(text/JSON/SARIF) apply unchanged.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from ..lint.diagnostics import Diagnostic, LintResult, Region, Severity
from . import checks
from .model import (
    PyModule,
    SelfCheckConfig,
    iter_python_files,
    load_module,
)

#: The per-module rules, run on every parsed file independently.
MODULE_CHECKS = (
    checks.check_blocking_async,
    checks.check_fork_caches,
    checks.check_snapshot_mutation,
    checks.check_nondeterminism,
)

#: The tree-wide rules, run once over the whole module collection.
TREE_CHECKS = (
    checks.check_telemetry,
    checks.check_failpoints,
)


def load_tree(
    paths: Iterable[Path], root: Path
) -> tuple[list[PyModule], list[Diagnostic]]:
    """Parse every Python file under *paths*; syntax errors become RL000."""
    modules: list[PyModule] = []
    failures: list[Diagnostic] = []
    for path in iter_python_files(paths):
        loaded = load_module(path, root)
        if isinstance(loaded, SyntaxError):
            try:
                rel = str(path.relative_to(root))
            except ValueError:
                rel = str(path)
            line = loaded.lineno or 1
            column = (loaded.offset or 1) or 1
            failures.append(
                Diagnostic(
                    code="RL000",
                    severity=Severity.ERROR,
                    message=f"cannot parse: {loaded.msg}",
                    file=rel,
                    region=None
                    if loaded.lineno is None
                    else Region(line, column, line, column + 1),
                )
            )
        else:
            modules.append(loaded)
    return modules, failures


def _apply_suppressions(
    diagnostics: Iterable[Diagnostic], modules: Sequence[PyModule]
) -> list[Diagnostic]:
    by_rel = {module.rel: module for module in modules}
    kept = []
    for diagnostic in diagnostics:
        module = by_rel.get(diagnostic.file or "")
        if (
            module is not None
            and diagnostic.region is not None
            and module.suppressed(
                diagnostic.region.start_line, diagnostic.code
            )
        ):
            continue
        kept.append(diagnostic)
    return kept


def run_selfcheck(
    paths: Iterable[Path | str],
    config: SelfCheckConfig | None = None,
) -> LintResult:
    """Run every RL rule over the Python tree rooted at *paths*."""
    resolved = [Path(p) for p in paths]
    if config is None:
        anchor = resolved[0] if resolved else Path.cwd()
        base = anchor if anchor.is_dir() else anchor.parent
        config = SelfCheckConfig.for_repo(_find_repo_root(base))
    modules, diagnostics = load_tree(resolved, config.root)
    for module in modules:
        for check in MODULE_CHECKS:
            diagnostics.extend(check(module))
    for tree_check in TREE_CHECKS:
        diagnostics.extend(tree_check(modules, config))
    return LintResult.of(_apply_suppressions(diagnostics, modules))


def _find_repo_root(start: Path) -> Path:
    """The nearest ancestor holding ``pyproject.toml`` (else *start*)."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current
