"""Inputs of the self-check pass: parsed modules and tree layout.

The pass works on a *tree*, not a single file: several rules (telemetry
drift, failpoint coverage, fork-cache registration) are cross-module
properties, so the engine loads every Python file under the requested
roots up front into :class:`PyModule` values and hands the whole
collection to each check.

Suppressions are inline and must carry a reason::

    time.sleep(0.01)  # devlint: allow[RL001] paced retry, loop is idle

A suppression silences exactly the named code on that physical line.
Reason-less ``allow`` markers are deliberately rejected (they match
nothing), so every accepted finding leaves a written justification in
the tree.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

SUPPRESS_RE = re.compile(
    r"#\s*devlint:\s*allow\[(?P<code>RL\d{3})\]\s+(?P<reason>\S.*)$"
)

#: Directories never worth parsing (caches, VCS metadata).
_SKIP_DIRS = {"__pycache__", ".git", ".pytest_cache", ".mypy_cache"}


@dataclass(frozen=True)
class SelfCheckConfig:
    """Where the tree-wide rules look for their ground truth.

    *root* anchors relative paths in diagnostics.  *docs_path* is the
    metric catalog RL005 checks documentation against; *tests_path* is
    the tree RL006 scans for failpoint coverage.  Either may be absent
    (e.g. linting a fixture corpus), in which case the dependent half
    of the rule is skipped.
    """

    root: Path
    docs_path: Path | None = None
    tests_path: Path | None = None

    @classmethod
    def for_repo(cls, root: Path) -> "SelfCheckConfig":
        """The standard layout: ``docs/observability.md`` + ``tests/``."""
        docs = root / "docs" / "observability.md"
        tests = root / "tests"
        return cls(
            root=root,
            docs_path=docs if docs.is_file() else None,
            tests_path=tests if tests.is_dir() else None,
        )


@dataclass
class PyModule:
    """One parsed source file plus its per-line suppressions."""

    path: Path
    rel: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: line number -> set of suppressed RL codes on that line.
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def basename(self) -> str:
        return self.path.name

    @property
    def segments(self) -> tuple[str, ...]:
        """Path segments of the repo-relative path (for scoping rules)."""
        return tuple(Path(self.rel).parts)

    def suppressed(self, line: int, code: str) -> bool:
        return code in self.suppressions.get(line, set())

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


def parse_suppressions(lines: Iterable[str]) -> dict[int, set[str]]:
    out: dict[int, set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = SUPPRESS_RE.search(text)
        if match is not None:
            out.setdefault(number, set()).add(match.group("code"))
    return out


def load_module(path: Path, root: Path) -> "PyModule | SyntaxError":
    """Parse *path*; a :class:`SyntaxError` return becomes an RL000."""
    try:
        rel = str(path.relative_to(root))
    except ValueError:
        rel = str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=rel)
    except SyntaxError as exc:
        return exc
    lines = source.splitlines()
    return PyModule(
        path=path,
        rel=rel,
        source=source,
        lines=lines,
        tree=tree,
        suppressions=parse_suppressions(lines),
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Every ``.py`` file under *paths*, files and directories alike."""
    seen: set[Path] = set()
    for path in paths:
        if path.is_file():
            if path.suffix == ".py" and path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            if any(part in _SKIP_DIRS for part in candidate.parts):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate
