"""The self-check rule catalog: stable ``RL`` codes over the repro tree.

Where the ``SDR`` rules (:mod:`repro.lint`) machine-check *reduction
specifications*, the ``RL`` rules machine-check the *reproduction
itself*: the concurrency-safety invariants the serving, parallel, and
durability layers rely on but that, before this pass, were enforced
purely by convention.  Each rule has a runtime companion where one
makes sense (see :mod:`repro.sanitize`): ``RL001`` pairs with the
``block`` sanitizer, ``RL002`` with ``fork``, ``RL003`` with
``mutation``.

Codes are stable; the catalog is documented in ``docs/selfcheck.md``.
"""

from __future__ import annotations

from ..lint.diagnostics import Severity
from ..lint.rules import Rule

_RULE_DEFS = (
    Rule(
        "RL001",
        "blocking-call-in-async",
        Severity.ERROR,
        "A blocking call (sleep, fsync, rename, file/socket I/O, journal "
        "write) is reachable inside an async def body of the serving "
        "layer without asyncio.to_thread or an executor.",
        "docs/serving.md — event-loop discipline",
        hint="move the blocking work into asyncio.to_thread(...) or "
        "loop.run_in_executor(...)",
    ),
    Rule(
        "RL002",
        "fork-unsafe-cache",
        Severity.ERROR,
        "A module-level mutable cache in a worker-imported package is "
        "not registered with the fork-safe cache registry, so forked "
        "shard workers inherit it uncleared.",
        "docs/parallelism.md — fork hygiene",
        hint="register it via repro._forkreg.register_cache(name, "
        "clearer, size) so forksafe.clear_inherited_caches sweeps it",
    ),
    Rule(
        "RL003",
        "snapshot-mutation",
        Severity.ERROR,
        "Attribute or item assignment on an object that carries frozen "
        "StoreSnapshot state, outside the snapshot constructors.",
        "docs/serving.md — MVCC snapshot immutability",
        hint="published versions are immutable; mutate the live store "
        "and publish a new version",
    ),
    Rule(
        "RL004",
        "nondeterministic-source",
        Severity.ERROR,
        "An unseeded random generator or wall-clock read (time.time, "
        "datetime.now, date.today) in a module that promises "
        "deterministic replay.",
        "docs/durability.md — deterministic fault schedules",
        hint="take the clock or a seeded random.Random(seed) as an "
        "injectable parameter",
    ),
    Rule(
        "RL005",
        "telemetry-drift",
        Severity.ERROR,
        "A repro_* metric name that is not declared exactly once in a "
        "telemetry/obs registry module, or is missing from "
        "docs/observability.md.",
        "docs/observability.md — metric catalog",
        hint="declare the name as a constant in the layer's telemetry "
        "module, import it at use sites, and document it",
    ),
    Rule(
        "RL006",
        "failpoint-uncovered",
        Severity.ERROR,
        "A registered failpoint name is never exercised by any test "
        "(neither literally nor via iteration over its catalog tuple).",
        "docs/durability.md — failpoint catalogue",
        hint="add a test that schedules the failpoint (REPRO_FAILPOINTS "
        "or FaultInjector) and asserts the system absorbs it",
    ),
    Rule(
        "RL000",
        "selfcheck-parse-error",
        Severity.ERROR,
        "A file handed to the self-check pass could not be parsed as "
        "Python.",
        "docs/selfcheck.md",
    ),
)

RULES: dict[str, Rule] = {rule.code: rule for rule in _RULE_DEFS}
