"""Semantic soundness checks: NonCrossing, Growing, and their prover."""

from .classify import (
    ActionClass,
    Classification,
    classify_action,
    classify_profile,
    is_growing_action,
)
from .growing import GrowingCheckViolation, check_growing, is_growing
from .noncrossing import (
    CrossingViolation,
    check_noncrossing,
    is_noncrossing,
    noncrossing_pair,
)
from .prover import ProverConfig

__all__ = [
    "ActionClass",
    "Classification",
    "CrossingViolation",
    "GrowingCheckViolation",
    "ProverConfig",
    "check_growing",
    "check_noncrossing",
    "classify_action",
    "classify_profile",
    "is_growing",
    "is_growing_action",
    "is_noncrossing",
    "noncrossing_pair",
]
