"""The NonCrossing property and its operational check (Sections 4.3, 5.2).

Two actions *cross* when their predicates can simultaneously select the
same cell while their target granularities are incomparable under
``<=_V``; a crossing pair leaves the resulting granularity undefined and
can make one predicate unevaluable after the other fires (the paper's
``a2``/``a3`` and ``a2``/``a4`` examples).

The check follows the paper's four-line ``noncrossing(a1, a2)`` algorithm:
syntactic order test first, then a time-free satisfiability check, then
the ``exists t`` satisfiability check — both discharged to the bounded
decision procedure in :mod:`repro.checks.prover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.dimension import Dimension
from ..spec.action import Action
from ..spec.ranges import profiles_of
from .prover import ProverConfig, actions_overlap


@dataclass(frozen=True)
class CrossingViolation:
    """A pair of actions that overlap but are not ``<=_V``-comparable."""

    first: str
    second: str

    def __str__(self) -> str:
        return (
            f"actions {self.first!r} and {self.second!r} have overlapping "
            "predicates but incomparable target granularities"
        )


def noncrossing_pair(
    a1: Action,
    a2: Action,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> bool:
    """The paper's ``noncrossing(a1, a2)`` function.

    1. ordered either way -> ``True``;
    2. otherwise, if an evaluation time exists at which both predicates
       can select a common cell -> ``False``;
    3. otherwise ``True``.

    (The paper's separate time-independent case is the same satisfiability
    question with the time variable absent; the prover short-circuits it.)
    """
    if a1.le(a2) or a2.le(a1):
        return True
    return not actions_overlap(
        profiles_of(a1), profiles_of(a2), dimensions, config
    )


def check_noncrossing(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> list[CrossingViolation]:
    """All crossing pairs in *actions* (``|A|^2`` pair checks, Sec. 5.2)."""
    violations: list[CrossingViolation] = []
    profile_cache = {action.name: profiles_of(action) for action in actions}
    for i, a1 in enumerate(actions):
        for a2 in actions[i + 1 :]:
            if a1.le(a2) or a2.le(a1):
                continue
            if actions_overlap(
                profile_cache[a1.name], profile_cache[a2.name], dimensions, config
            ):
                violations.append(CrossingViolation(a1.name, a2.name))
    return violations


def is_noncrossing(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> bool:
    """``NonCrossing(V)`` (Equation 14) for the action set."""
    return not check_noncrossing(actions, dimensions, config)
