"""Classification of actions as fixed, growing, or shrinking (Section 4.3).

The paper sorts action predicates into categories A–H by how their time
boundaries move with ``NOW``:

==========  =============================================  ==========
categories  boundary shape                                  class
==========  =============================================  ==========
A           fixed boundaries only                           fixed
B, C        one increasing/decreasing open boundary         growing
D, E        one fixed + one moving-outward boundary         growing
F, G, H     a boundary moving *inward* over time            shrinking
==========  =============================================  ==========

In the paper's (and our) term language, ``NOW - span`` bounds always move
*forward* as time passes, so an upper bound built from it grows the
selected set (B/D) while a lower bound shrinks it (F); the
decreasing-lower / decreasing-upper shapes (C, E, G) and hence H are not
expressible.  We still report the letter so diagnostics match the paper's
vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..spec.action import Action
from ..spec.ranges import ConjunctProfile, profiles_of

_INF = float("inf")


class ActionClass(enum.Enum):
    """Whether an action's selected set is fixed, growing, or shrinking."""

    FIXED = "fixed"
    GROWING = "growing"
    SHRINKING = "shrinking"


@dataclass(frozen=True)
class Classification:
    """Class and paper letter-category of one conjunct."""

    action_class: ActionClass
    letter: str

    @property
    def is_shrinking(self) -> bool:
        return self.action_class is ActionClass.SHRINKING


def classify_profile(profile: ConjunctProfile) -> Classification:
    """Classify one conjunct's range profile."""
    window = profile.window
    if profile.is_shrinking():
        # An increasing lower boundary; with a moving upper bound as well
        # the paper's closest letter is still F (H needs a *decreasing*
        # upper bound, inexpressible here).
        return Classification(ActionClass.SHRINKING, "F")
    if not window.has_rel:
        return Classification(ActionClass.FIXED, "A")
    has_fixed_lower = window.abs_lo != -_INF
    if window.rel_hi != _INF:
        letter = "D" if has_fixed_lower else "B"
        return Classification(ActionClass.GROWING, letter)
    # A NOW-relative bound was seen but contributes no finite edge after
    # tightening (e.g. it was subsumed); the selected set cannot shrink.
    return Classification(ActionClass.GROWING, "B")


def classify_action(action: Action) -> Classification:
    """The weakest classification across the action's DNF conjuncts.

    An action is shrinking as soon as *any* conjunct shrinks; it is fixed
    only when every conjunct is.
    """
    results = [classify_profile(p) for p in profiles_of(action)]
    if not results:
        return Classification(ActionClass.FIXED, "A")
    if any(r.action_class is ActionClass.SHRINKING for r in results):
        return next(
            r for r in results if r.action_class is ActionClass.SHRINKING
        )
    if any(r.action_class is ActionClass.GROWING for r in results):
        return next(r for r in results if r.action_class is ActionClass.GROWING)
    return results[0]


def is_growing_action(action: Action) -> bool:
    """Theorem 1's fast path: a non-shrinking action never endangers the
    Growing property of a specification that already satisfies it."""
    return classify_action(action).action_class is not ActionClass.SHRINKING
