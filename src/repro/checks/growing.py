"""The Growing property and its operational check (Sections 4.3, 5.3).

``Growing(V, O)`` (Equation 17) demands that a cell's aggregation level
never decreases in any dimension as time passes.  Actions whose predicate
can *stop* selecting a cell (a NOW-relative lower boundary — the paper's
category F) endanger it: when a cell falls off the trailing edge, some
other, ``<=_V``-larger action must immediately specify at least the same
level for it.

The check mirrors the paper's three-step algorithm, made exact by bounded
sampling:

1. find the trailing edge of each shrinking conjunct;
2. collect the candidate catcher set ``A' = {a_j | a <=_V a_j}``;
3. verify, at every sampled evaluation time at which cells actually leave
   the predicate, that every leaving cell (time interval x grounded
   categorical region) is covered by some catcher *at the next instant* —
   the paper's implication ``P[.. <= t_lb] => OR_j P_j[.. <= t_lb - 1]``
   (Equation 23), grounded against the dimension instances instead of PVS.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.dimension import Dimension
from ..spec.action import Action
from ..spec.ranges import ConjunctProfile, profiles_of, window_at
from .classify import classify_profile
from .prover import (
    ProverConfig,
    cell_in_region,
    categorical_regions,
    enumerate_region_product,
    interval_covered,
    sample_times,
)

_INF = float("inf")


@dataclass(frozen=True)
class GrowingCheckViolation:
    """A concrete witness that a specification is not Growing."""

    action: str
    at: _dt.date
    cell: Mapping[str, str] | None
    leaving_days: tuple[float, float]

    def __str__(self) -> str:
        lo = _dt.date.fromordinal(int(self.leaving_days[0]))
        hi = _dt.date.fromordinal(int(self.leaving_days[1]))
        where = f" for cell {dict(self.cell)!r}" if self.cell else ""
        return (
            f"action {self.action!r} stops selecting days "
            f"[{lo}..{hi}]{where} at {self.at} and no <=_V-larger action "
            "takes over"
        )


def check_growing(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> list[GrowingCheckViolation]:
    """All Growing violations witnessed on the sampled horizon.

    Non-shrinking actions are skipped outright (Theorem 1); for shrinking
    ones the leaving region is re-derived exactly at each sampled day.
    """
    config = config or ProverConfig()
    violations: list[GrowingCheckViolation] = []
    all_profiles: list[tuple[Action, ConjunctProfile]] = []
    for action in actions:
        for profile in profiles_of(action):
            all_profiles.append((action, profile))
    for action, profile in all_profiles:
        if not classify_profile(profile).is_shrinking:
            continue
        witness = _check_shrinking_profile(
            action, profile, all_profiles, dimensions, config
        )
        if witness is not None:
            violations.append(witness)
    return violations


def is_growing(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> bool:
    """``Growing(V, O)`` on the sampled horizon (Equation 17)."""
    return not check_growing(actions, dimensions, config)


def _check_shrinking_profile(
    action: Action,
    profile: ConjunctProfile,
    all_profiles: Sequence[tuple[Action, ConjunctProfile]],
    dimensions: Mapping[str, Dimension] | None,
    config: ProverConfig,
) -> GrowingCheckViolation | None:
    # Step 2: candidate catchers must aggregate at least as high in every
    # dimension; an action's own other conjuncts may also catch.
    catchers = [
        (other, other_profile)
        for other, other_profile in all_profiles
        if other_profile is not profile and action.le(other)
    ]
    region = categorical_regions(profile, dimensions)
    cells = enumerate_region_product(
        region, dimensions, config.region_cap
    )
    catcher_regions = [
        (other_profile, categorical_regions(other_profile, dimensions))
        for _, other_profile in catchers
    ]
    one_day = _dt.timedelta(days=1)
    profiles_for_horizon = [profile] + [p for _, p in catchers]
    for t in sample_times(profiles_for_horizon, config):
        today = window_at(profile, t)
        if today is None or today[0] > today[1]:
            continue
        tomorrow = window_at(profile, t + one_day)
        leaving = _leaving_interval(today, tomorrow)
        if leaving is None:
            continue
        if cells is None:
            # The categorical region could not be enumerated; the only
            # sound coverage argument is an unconstrained-or-superset
            # catcher, which cell_in_region cannot establish for a
            # symbolic region.  Check against catchers that are fully
            # unconstrained categorically.
            covering = [
                window_at(other_profile, t + one_day)
                for other_profile, other_region in catcher_regions
                if all(r is None for r in other_region.values())
            ]
            if not interval_covered(leaving, covering):
                return GrowingCheckViolation(action.name, t, None, leaving)
            continue
        for cell in cells:
            covering = [
                window_at(other_profile, t + one_day)
                for other_profile, other_region in catcher_regions
                if cell_in_region(cell, other_region)
            ]
            if not interval_covered(leaving, covering):
                return GrowingCheckViolation(action.name, t, cell, leaving)
    return None


def _leaving_interval(
    today: tuple[float, float], tomorrow: tuple[float, float] | None
) -> tuple[float, float] | None:
    """Days selected at ``t`` but no longer at ``t + 1``.

    Upper bounds in the term language only move forward, so the leaving
    region is always the prefix of today's window below tomorrow's lower
    bound (the whole window when it vanishes).
    """
    lo, hi = today
    if tomorrow is None:
        return None
    t_lo, t_hi = tomorrow
    if t_lo > t_hi:
        return (lo, hi)
    leaving_hi = min(hi, t_lo - 1)
    if leaving_hi < lo:
        return None
    return (lo, leaving_hi)
