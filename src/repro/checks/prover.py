"""A bounded decision procedure for specification predicates.

The paper discharges its predicate satisfiability and implication checks
to the PVS theorem prover (Sections 5.2–5.3).  This module substitutes a
decision procedure specialized to the actual predicate fragment — after
DNF splitting, conjunctions of per-dimension range atoms:

* **time atoms** reduce, at each concrete evaluation time, to *exact*
  day-ordinal intervals (:func:`repro.spec.ranges.window_at`);
* **categorical atoms** ground to finite bottom-value regions against the
  dimension instances (:func:`repro.spec.ranges.bottom_region`) — the
  counterpart of the paper giving PVS "knowledge of the domain of the URL
  dimension";
* the time variable is handled by *bounded sampling*: properties are
  verified exactly at every day of a horizon wide enough to contain all
  absolute bounds, all NOW-offsets, and several calendar cycles.

For the NOW-relative fragment the satisfiability pattern is eventually
periodic in the evaluation time, so a multi-year horizon decides the
paper's examples exactly; the horizon is configurable and recorded in the
result for auditability.
"""

from __future__ import annotations

import datetime as _dt
import itertools
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..core.dimension import Dimension
from ..errors import SpecSemanticsError
from ..spec.ranges import (
    ConjunctProfile,
    bottom_region,
    window_at,
    windows_intersect,
)

_INF = float("inf")

#: Default evaluation-time reference when no absolute bound anchors one.
DEFAULT_REFERENCE = _dt.date(2001, 1, 1)

#: Default number of years sampled around the anchor.
DEFAULT_HORIZON_YEARS = 4

#: Cap on enumerated categorical product cells in coverage checks.
DEFAULT_REGION_CAP = 50_000


@dataclass
class ProverConfig:
    """Tunables of the bounded decision procedure."""

    reference: _dt.date = DEFAULT_REFERENCE
    horizon_years: int = DEFAULT_HORIZON_YEARS
    region_cap: int = DEFAULT_REGION_CAP
    sample_step_days: int = 1


def sample_times(
    profiles: Sequence[ConjunctProfile], config: ProverConfig
) -> list[_dt.date]:
    """The evaluation times at which properties are verified exactly.

    The horizon spans all absolute day bounds found in the profiles,
    padded by the largest NOW-offset plus one year on each side, and is at
    least ``horizon_years`` wide around the reference date.
    """
    abs_days: list[float] = []
    max_offset = 0.0
    for profile in profiles:
        window = profile.window
        for bound in (window.abs_lo, window.abs_hi):
            if bound not in (-_INF, _INF):
                abs_days.append(bound)
        for bound in (window.rel_lo, window.rel_hi):
            if bound not in (-_INF, _INF):
                max_offset = max(max_offset, abs(bound))
    pad = int(max_offset) + 366
    ref = config.reference.toordinal()
    half = (config.horizon_years * 366) // 2
    lo = ref - half
    hi = ref + half
    if abs_days:
        lo = min(lo, int(min(abs_days)) - pad)
        hi = max(hi, int(max(abs_days)) + pad)
    step = max(1, config.sample_step_days)
    return [
        _dt.date.fromordinal(day) for day in range(lo, hi + 1, step)
    ]


def time_independent(profile: ConjunctProfile) -> bool:
    """Whether the conjunct's time atoms are free of the NOW variable."""
    return not profile.window.has_rel and not profile.shrinking_edges


# ----------------------------------------------------------------------
# Categorical reasoning
# ----------------------------------------------------------------------

def categorical_regions(
    profile: ConjunctProfile,
    dimensions: Mapping[str, Dimension] | None,
) -> dict[str, frozenset[str] | None]:
    """Grounded bottom-value region per non-time dimension.

    ``None`` means unconstrained.  Without a dimension instance a
    constrained dimension cannot be grounded, which the callers treat
    conservatively (assume overlap; refuse coverage).
    """
    from ..spec.action import is_time_dimension_type

    regions: dict[str, frozenset[str] | None] = {}
    for name in profile.action.schema.dimension_names:
        if name == profile.time_dimension or is_time_dimension_type(
            profile.action.schema.dimension_type(name)
        ):
            continue
        constraints = profile.categorical_for(name)
        if not constraints:
            regions[name] = None
            continue
        if dimensions is None or name not in dimensions:
            regions[name] = _SYMBOLIC
            continue
        regions[name] = bottom_region(profile, dimensions[name])
    return regions


class _Symbolic(frozenset):
    """Marker: a constrained region that could not be grounded."""


_SYMBOLIC = _Symbolic()


def region_is_symbolic(region: frozenset[str] | None) -> bool:
    """Whether a categorical region is constrained but ungrounded."""
    return isinstance(region, _Symbolic)


def regions_overlap(
    a: Mapping[str, frozenset[str] | None],
    b: Mapping[str, frozenset[str] | None],
) -> bool:
    """Could some bottom cell satisfy both categorical regions?

    Sound over-approximation: ungrounded (symbolic) regions count as
    overlapping.
    """
    for name in set(a) | set(b):
        ra = a.get(name)
        rb = b.get(name)
        if isinstance(ra, _Symbolic) or isinstance(rb, _Symbolic):
            continue
        if ra is None or rb is None:
            continue
        if not (ra & rb):
            return False
        if not ra or not rb:
            return False
    return True


def enumerate_region_product(
    regions: Mapping[str, frozenset[str] | None],
    dimensions: Mapping[str, Dimension] | None,
    cap: int,
) -> list[dict[str, str]] | None:
    """All bottom cells of the non-time region, or ``None`` when the
    product cannot be enumerated (symbolic region or above *cap*)."""
    names: list[str] = []
    value_sets: list[Sequence[str]] = []
    size = 1
    for name, region in regions.items():
        if isinstance(region, _Symbolic):
            return None
        if region is None:
            if dimensions is None or name not in dimensions:
                return None
            region = dimensions[name].values(dimensions[name].bottom_category)
        names.append(name)
        values = sorted(region)
        value_sets.append(values)
        size *= max(1, len(values))
        if size > cap:
            return None
        if not values:
            return []
    return [
        dict(zip(names, combo)) for combo in itertools.product(*value_sets)
    ]


def cell_in_region(
    cell: Mapping[str, str],
    regions: Mapping[str, frozenset[str] | None],
) -> bool:
    """Does a bottom cell lie inside a categorical region?

    Symbolic regions fail closed (the catcher cannot be *proved* to cover
    the cell).
    """
    for name, region in regions.items():
        if isinstance(region, _Symbolic):
            return False
        if region is None:
            continue
        if cell.get(name) not in region:
            return False
    return True


# ----------------------------------------------------------------------
# Satisfiability / overlap
# ----------------------------------------------------------------------

def profiles_overlap(
    p1: ConjunctProfile,
    p2: ConjunctProfile,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> bool:
    """Decide ``exists t: Pred(p1, t) and Pred(p2, t) nonempty``.

    Exact on the sampled horizon; errs on the side of ``True`` (overlap)
    whenever grounding information is missing, which makes the NonCrossing
    checker reject rather than accept in the unclear cases.
    """
    config = config or ProverConfig()
    r1 = categorical_regions(p1, dimensions)
    r2 = categorical_regions(p2, dimensions)
    if not regions_overlap(r1, r2):
        return False
    if not p1.time_atoms and not p2.time_atoms:
        return True
    if time_independent(p1) and time_independent(p2):
        # No NOW variable: one evaluation decides (line 3 of the paper's
        # noncrossing algorithm).
        t = config.reference
        return windows_intersect(window_at(p1, t), window_at(p2, t))
    for t in sample_times((p1, p2), config):
        if windows_intersect(window_at(p1, t), window_at(p2, t)):
            return True
    return False


def actions_overlap(
    profiles_a: Iterable[ConjunctProfile],
    profiles_b: Iterable[ConjunctProfile],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> bool:
    """Overlap between two actions == overlap of any conjunct pair."""
    list_b = list(profiles_b)
    return any(
        profiles_overlap(pa, pb, dimensions, config)
        for pa in profiles_a
        for pb in list_b
    )


# ----------------------------------------------------------------------
# Overlap witnesses (consumed by the semantic analyzer)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class OverlapWitness:
    """A concrete point where two conjunct profiles meet.

    ``at`` is the evaluation time, ``day`` a day inside both time windows
    (``None`` when neither profile constrains time), and ``cell`` the
    chosen non-time bottom values as sorted ``(dimension, value)`` pairs.
    The witness is a *candidate*: callers that need certainty re-evaluate
    the predicates at this point.
    """

    at: _dt.date
    day: _dt.date | None
    cell: tuple[tuple[str, str], ...]

    def cell_mapping(self) -> dict[str, str]:
        return dict(self.cell)


def _witness_day(
    a: tuple[float, float] | None, b: tuple[float, float] | None
) -> _dt.date | None:
    lo = max(
        (w[0] for w in (a, b) if w is not None), default=-_INF
    )
    hi = min(
        (w[1] for w in (a, b) if w is not None), default=_INF
    )
    for bound in (lo, hi):
        if bound not in (-_INF, _INF):
            return _dt.date.fromordinal(int(bound))
    return None


def overlap_witness(
    p1: ConjunctProfile,
    p2: ConjunctProfile,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> OverlapWitness | None:
    """A candidate point satisfying both profiles, or ``None`` when the
    sampled horizon shows no time at which their windows intersect.

    Mirrors :func:`profiles_overlap` but materializes the meeting point:
    a shared bottom value per groundable non-time dimension (falling back
    to any bottom value where both profiles are unconstrained) and the
    first sampled time whose windows intersect.
    """
    config = config or ProverConfig()
    r1 = categorical_regions(p1, dimensions)
    r2 = categorical_regions(p2, dimensions)
    cell: dict[str, str] = {}
    for name in sorted(set(r1) | set(r2)):
        ra = r1.get(name)
        rb = r2.get(name)
        if isinstance(ra, _Symbolic) or isinstance(rb, _Symbolic):
            continue
        if ra is None and rb is None:
            if dimensions is not None and name in dimensions:
                dimension = dimensions[name]
                values = dimension.values(dimension.bottom_category)
                if values:
                    cell[name] = min(values)
            continue
        if ra is None:
            pool = rb
        elif rb is None:
            pool = ra
        else:
            pool = ra & rb
        if pool:
            cell[name] = min(pool)
    frozen = tuple(sorted(cell.items()))
    if not p1.time_atoms and not p2.time_atoms:
        return OverlapWitness(config.reference, None, frozen)
    if time_independent(p1) and time_independent(p2):
        times: list[_dt.date] = [config.reference]
    else:
        times = sample_times((p1, p2), config)
    for t in times:
        w1 = window_at(p1, t)
        w2 = window_at(p2, t)
        if windows_intersect(w1, w2):
            return OverlapWitness(t, _witness_day(w1, w2), frozen)
    return None


# ----------------------------------------------------------------------
# Interval-union coverage (used by the Growing check)
# ----------------------------------------------------------------------

def interval_covered(
    target: tuple[float, float],
    pieces: Iterable[tuple[float, float] | None],
) -> bool:
    """Is the day interval *target* contained in the union of *pieces*?"""
    lo, hi = target
    if lo > hi:
        return True
    concrete: list[tuple[float, float]] = []
    for piece in pieces:
        if piece is None:
            return True
        if piece[0] <= piece[1]:
            concrete.append(piece)
    concrete.sort()
    cursor = lo
    for p_lo, p_hi in concrete:
        if p_lo > cursor:
            return False
        if p_hi >= cursor:
            cursor = p_hi + 1
            if cursor > hi:
                return True
    return cursor > hi


def require_dimensions(
    dimensions: Mapping[str, Dimension] | None, context: str
) -> Mapping[str, Dimension]:
    """Demand dimension instances for checks that must ground predicates."""
    if dimensions is None:
        raise SpecSemanticsError(
            f"{context}: dimension instances are required to ground "
            "categorical predicates (the finite-domain analogue of the "
            "paper's PVS domain knowledge)"
        )
    return dimensions
