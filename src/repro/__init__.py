"""repro — Specification-Based Data Reduction in Dimensional Data Warehouses.

A complete, from-scratch implementation of Skyt, Jensen & Pedersen
(ICDE 2002 / TimeCenter TR-61): the multidimensional data model, the data
reduction specification language with its NonCrossing/Growing soundness
checks, the reduction semantics, the varying-granularity query algebra,
and the subcube-based implementation strategy on both an in-memory engine
and a SQLite star schema.

Quickstart::

    import datetime as dt
    from repro import MOBuilder, Action, ReductionSpecification, reduce_mo

    mo = (
        MOBuilder("Click")
        ...  # dimensions, measures, facts
        .build()
    )
    a1 = Action.parse(
        mo.schema,
        "a[Time.month, URL.domain] o[Time.month <= NOW - 6 months]",
    )
    spec = ReductionSpecification([a1], mo.dimensions)
    reduced = reduce_mo(mo, spec, dt.date(2000, 11, 5))

See ``examples/`` for runnable scenarios and ``DESIGN.md`` for the full
system inventory.
"""

from .core import (
    ALL_VALUE,
    Dimension,
    DimensionType,
    FactSchema,
    Hierarchy,
    MOBuilder,
    Measure,
    MeasureType,
    MultidimensionalObject,
    Provenance,
    TOP,
    dimension_from_rows,
    dimension_type_from_chains,
)
from .checks import (
    check_growing,
    check_noncrossing,
    classify_action,
    is_growing,
    is_noncrossing,
)
from .engine import SubcubeQuery, SubcubeStore, SyncScheduler, query_store
from .errors import (
    GrowingViolation,
    NonCrossingViolation,
    ReproError,
    SpecSemanticsError,
    SpecSyntaxError,
    SpecificationUpdateRejected,
)
from .query import (
    AggregationApproach,
    Approach,
    Query,
    aggregate,
    mo_rows,
    project,
    select,
    select_weighted,
)
from .io import (
    dump_mo,
    dump_specification,
    load_mo,
    load_specification,
    mo_from_dict,
    mo_to_dict,
)
from .query.disaggregation import aggregate_disaggregated
from .reduction import (
    DeletionAction,
    Warehouse,
    drop_dimension,
    drop_measure,
    reduce_mo,
    reduce_with_deletion,
    responsible_action,
    run_timeline,
)
from .core.validate import validate_mo
from .spec import Action, ReductionSpecification, parse_action, parse_predicate
from .spec.explain import describe_specification, explain_fact, explain_mo
from .sql import SqlWarehouse, aggregate_rows, reduce_warehouse, select_fact_ids
from .timedim import (
    TimeSpan,
    build_sparse_time_dimension,
    build_time_dimension,
    time_dimension_type,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_VALUE",
    "Action",
    "AggregationApproach",
    "Approach",
    "Dimension",
    "DimensionType",
    "FactSchema",
    "GrowingViolation",
    "Hierarchy",
    "MOBuilder",
    "Measure",
    "MeasureType",
    "MultidimensionalObject",
    "NonCrossingViolation",
    "Provenance",
    "Query",
    "ReductionSpecification",
    "ReproError",
    "SpecSemanticsError",
    "SpecSyntaxError",
    "SpecificationUpdateRejected",
    "SqlWarehouse",
    "SubcubeQuery",
    "SubcubeStore",
    "SyncScheduler",
    "TOP",
    "TimeSpan",
    "Warehouse",
    "aggregate",
    "aggregate_rows",
    "DeletionAction",
    "aggregate_disaggregated",
    "build_sparse_time_dimension",
    "build_time_dimension",
    "drop_dimension",
    "drop_measure",
    "dump_mo",
    "dump_specification",
    "load_mo",
    "load_specification",
    "mo_from_dict",
    "mo_to_dict",
    "reduce_with_deletion",
    "check_growing",
    "check_noncrossing",
    "classify_action",
    "dimension_from_rows",
    "dimension_type_from_chains",
    "is_growing",
    "is_noncrossing",
    "mo_rows",
    "parse_action",
    "parse_predicate",
    "project",
    "query_store",
    "reduce_mo",
    "reduce_warehouse",
    "responsible_action",
    "run_timeline",
    "describe_specification",
    "explain_fact",
    "explain_mo",
    "select",
    "select_fact_ids",
    "select_weighted",
    "time_dimension_type",
    "validate_mo",
]
