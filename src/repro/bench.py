"""The persistent benchmark suite behind ``repro bench``.

Two machine-readable trajectories are produced at the repository root (or
``--out-dir``):

* ``BENCH_reduction.json`` — op/s of the three ``reduce_mo`` backends
  (interpretive, compiled, columnar) on the clickstream workload, plus
  the columnar-vs-interpretive speedup;
* ``BENCH_sync.json`` — facts *examined* per synchronization step of a
  NOW advance, incremental vs full rescan, with timings.

Both documents carry a ``schema`` tag (``repro-bench-*/1``) so downstream
tooling (CI trend jobs, plots) can evolve without guessing at layouts.
``--smoke`` shrinks the workload for CI while keeping it large enough to
exercise the columnar dispatch path.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import time
from dataclasses import dataclass

from .engine.disjoint import DISJOINT_NEGATIONS, disjoint_actions
from .engine.store import (
    SYNC_LAST_EXAMINED,
    SubcubeStore,
)
from .obs import metrics as obs_metrics
from .spec.specification import ReductionSpecification
from .workload import (
    ClickstreamConfig,
    build_clickstream_mo,
    grouped_retention_actions,
)

#: Schema tags: bump the suffix when a document's layout changes.
REDUCTION_SCHEMA = "repro-bench-reduction/1"
SYNC_SCHEMA = "repro-bench-sync/1"

#: The full workload — identical to ``benchmarks/conftest.py``.
FULL_CONFIG = ClickstreamConfig(
    start=dt.date(1999, 1, 1),
    end=dt.date(2000, 12, 31),
    domains_per_group=3,
    urls_per_domain=3,
    clicks_per_day=6,
    seed=1234,
)
FULL_NOW = dt.date(2001, 1, 15)

#: The smoke workload — small enough for CI, large enough to stay above
#: the columnar auto-dispatch threshold.
SMOKE_CONFIG = ClickstreamConfig(
    start=dt.date(2000, 1, 1),
    end=dt.date(2000, 12, 31),
    domains_per_group=2,
    urls_per_domain=2,
    clicks_per_day=4,
    seed=1234,
)
SMOKE_NOW = dt.date(2001, 1, 15)


@dataclass(frozen=True)
class BenchProfile:
    """One benchmark configuration (full or smoke)."""

    name: str
    config: ClickstreamConfig
    now: dt.date
    repeats: int


FULL_PROFILE = BenchProfile("full", FULL_CONFIG, FULL_NOW, repeats=5)
SMOKE_PROFILE = BenchProfile("smoke", SMOKE_CONFIG, SMOKE_NOW, repeats=3)


def _best_seconds(fn, repeats: int) -> float:
    """Minimum wall time over *repeats* runs (the usual noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _workload(profile: BenchProfile):
    mo = build_clickstream_mo(profile.config)
    specification = ReductionSpecification(
        grouped_retention_actions(mo, detail_months=3, coarse_years=2),
        mo.dimensions,
    )
    return mo, specification


def _atom_counts(cubes) -> dict[str, int]:
    return {cube.name: len(list(cube.predicate.atoms())) for cube in cubes}


def _disjoint_block(specification: ReductionSpecification) -> dict:
    """Static predicate-size effect of the semantic-analyzer pruning."""
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.use_registry(registry):
        pruned = disjoint_actions(specification)
    unpruned = disjoint_actions(specification, prune=False)
    kept = int(registry.value(DISJOINT_NEGATIONS, {"status": "kept"}) or 0)
    dropped = int(
        registry.value(DISJOINT_NEGATIONS, {"status": "pruned"}) or 0
    )
    before = _atom_counts(unpruned)
    after = _atom_counts(pruned)
    return {
        "negation_terms": {"kept": kept, "pruned": dropped},
        "atoms": {
            name: {"before": before[name], "after": after[name]}
            for name in sorted(before)
        },
        "atoms_before": sum(before.values()),
        "atoms_after": sum(after.values()),
    }


def _workload_block(profile: BenchProfile, mo) -> dict:
    config = profile.config
    return {
        "profile": profile.name,
        "facts": mo.n_facts,
        "start": config.start.isoformat(),
        "end": config.end.isoformat(),
        "domains_per_group": config.domains_per_group,
        "urls_per_domain": config.urls_per_domain,
        "clicks_per_day": config.clicks_per_day,
        "seed": config.seed,
    }


def bench_reduction(profile: BenchProfile) -> dict:
    """Time the three ``reduce_mo`` backends on the clickstream workload."""
    from .reduction.reducer import reduce_mo

    mo, specification = _workload(profile)
    now = profile.now
    backends: dict[str, dict] = {}
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.use_registry(registry):
        for backend in ("interpretive", "compiled", "columnar"):
            reduced = reduce_mo(mo, specification, now, backend=backend)
            seconds = _best_seconds(
                lambda b=backend: reduce_mo(
                    mo, specification, now, backend=b
                ),
                profile.repeats,
            )
            backends[backend] = {
                "seconds": seconds,
                "ops_per_s": (1.0 / seconds) if seconds > 0 else None,
                "output_facts": reduced.n_facts,
            }
    interpretive = backends["interpretive"]["seconds"]
    return {
        "schema": REDUCTION_SCHEMA,
        "metrics": registry.snapshot(),
        "workload": _workload_block(profile, mo),
        "now": now.isoformat(),
        "repeats": profile.repeats,
        "backends": backends,
        "disjoint": _disjoint_block(specification),
        "speedup": {
            "compiled_vs_interpretive": interpretive
            / backends["compiled"]["seconds"],
            "columnar_vs_interpretive": interpretive
            / backends["columnar"]["seconds"],
        },
    }


def bench_sync(
    profile: BenchProfile,
    durable_path: str | None = None,
    fsync: bool = True,
) -> dict:
    """Measure incremental vs full-rescan synchronization work.

    Two stores replay the same trajectory — an initial sync followed by
    two NOW advances — one on the incremental path, one forcing full
    rescans.  Each step records the facts *examined* (the work metric the
    suspect-region analysis reduces) and wall time.

    With *durable_path*, the incremental store runs through the
    crash-safe :class:`~repro.engine.durable.DurableStore`, so the
    journaling/fsync overhead shows up in the incremental timings and an
    extra ``durable`` block lands in the document.
    """
    mo, specification = _workload(profile)
    facts = [
        (
            fact_id,
            dict(zip(mo.schema.dimension_names, mo.direct_cell(fact_id))),
            {
                name: mo.measure_value(fact_id, name)
                for name in mo.schema.measure_names
            },
        )
        for fact_id in mo.facts()
    ]
    t1 = profile.now
    t2 = t1 + dt.timedelta(days=45)
    t3 = t2 + dt.timedelta(days=45)

    registry = obs_metrics.MetricsRegistry()
    if durable_path is not None:
        from .engine.durable import DurableStore

        incremental = DurableStore.create(
            durable_path, mo, specification, fsync=fsync, metrics=registry
        )
    else:
        incremental = SubcubeStore(mo, specification, metrics=registry)
    incremental.load(facts)
    incremental.synchronize(t1)
    full = SubcubeStore(mo, specification)
    full.load(facts)
    full.synchronize(t1, incremental=False)

    steps = []
    for at in (t2, t3):
        started = time.perf_counter()
        moved_incremental = incremental.synchronize(at)
        seconds_incremental = time.perf_counter() - started
        examined_incremental = int(
            incremental.metrics.value(SYNC_LAST_EXAMINED) or 0
        )
        started = time.perf_counter()
        moved_full = full.synchronize(at, incremental=False)
        seconds_full = time.perf_counter() - started
        examined_full = int(full.metrics.value(SYNC_LAST_EXAMINED) or 0)
        steps.append(
            {
                "now": at.isoformat(),
                "incremental": {
                    "examined": examined_incremental,
                    "moved": sum(moved_incremental.values()),
                    "seconds": seconds_incremental,
                },
                "full": {
                    "examined": examined_full,
                    "moved": sum(moved_full.values()),
                    "seconds": seconds_full,
                },
                "total_facts": incremental.total_facts(),
            }
        )
    examined_incremental_total = sum(s["incremental"]["examined"] for s in steps)
    examined_full_total = sum(s["full"]["examined"] for s in steps)
    document = {
        "schema": SYNC_SCHEMA,
        # The incremental store's registry: sync counters/gauges, and
        # with --durable the journal/snapshot families too.  The full
        # store keeps its own registry (same gauge names) out of the doc.
        "metrics": registry.snapshot(),
        "workload": _workload_block(profile, mo),
        "initial_sync": t1.isoformat(),
        "steps": steps,
        "examined": {
            "incremental": examined_incremental_total,
            "full": examined_full_total,
            "saved": examined_full_total - examined_incremental_total,
        },
    }
    if durable_path is not None:
        audit = incremental.verify()
        document["durable"] = {
            "path": durable_path,
            "fsync": fsync,
            "journal_lsn": incremental.journal_lsn,
            "audit_ok": audit.ok,
        }
        incremental.snapshot()
        incremental.close()
    return document


def run_benchmarks(
    out_dir: str = ".",
    smoke: bool = False,
    repeats: int | None = None,
    durable_path: str | None = None,
    fsync: bool = True,
) -> dict[str, str]:
    """Run both suites and write the BENCH documents; returns the paths.

    The documents are written atomically (temp file + rename), so an
    interrupted benchmark run never truncates an existing trajectory.
    """
    from .io import atomic_write

    profile = SMOKE_PROFILE if smoke else FULL_PROFILE
    if repeats is not None:
        profile = BenchProfile(profile.name, profile.config, profile.now, repeats)
    documents = {
        "BENCH_reduction.json": bench_reduction(profile),
        "BENCH_sync.json": bench_sync(
            profile, durable_path=durable_path, fsync=fsync
        ),
    }
    os.makedirs(out_dir, exist_ok=True)
    paths: dict[str, str] = {}
    for filename, document in documents.items():
        path = os.path.join(out_dir, filename)
        with atomic_write(path) as stream:
            json.dump(document, stream, indent=1, sort_keys=True)
            stream.write("\n")
        paths[filename] = path
    return paths
