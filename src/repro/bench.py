"""The persistent benchmark suite behind ``repro bench``.

Two machine-readable trajectories are produced at the repository root (or
``--out-dir``):

* ``BENCH_reduction.json`` — op/s of the three ``reduce_mo`` backends
  (interpretive, compiled, columnar) on the clickstream workload, the
  columnar-vs-interpretive speedup, and a **shard-scaling curve**: the
  certificate-driven sharded path (:mod:`repro.parallel`) timed at each
  worker count of the sweep, with its speedup over the interpretive
  reference, its speedup over the best serial backend, and its parallel
  efficiency (``speedup_vs_serial / workers``);
* ``BENCH_sync.json`` — facts *examined* per synchronization step of a
  NOW advance, incremental vs full rescan, with timings, plus the
  sharded synchronization's scaling curve over the same trajectory.

Both documents carry a ``schema`` tag (``repro-bench-*/2``) so downstream
tooling (CI trend jobs, plots) can evolve without guessing at layouts,
and an ``environment`` block (CPU count, worker sweep) so curves from
different machines are never compared blindly.  ``--smoke`` shrinks the
workload for CI while keeping it large enough to exercise the columnar
dispatch path.
"""

from __future__ import annotations

import datetime as dt
import json
import os
import time
from dataclasses import dataclass

from .engine.disjoint import DISJOINT_NEGATIONS, disjoint_actions
from .engine.store import (
    SYNC_LAST_EXAMINED,
    SubcubeStore,
)
from .obs import metrics as obs_metrics
from .spec.specification import ReductionSpecification
from .workload import (
    ClickstreamConfig,
    build_clickstream_mo,
    grouped_retention_actions,
)

#: Schema tags: bump the suffix when a document's layout changes.
REDUCTION_SCHEMA = "repro-bench-reduction/2"
SYNC_SCHEMA = "repro-bench-sync/2"

#: Worker counts the shard-scaling curves sweep by default.
DEFAULT_WORKERS_SWEEP = (1, 2, 4)

#: The full workload — identical to ``benchmarks/conftest.py``.
FULL_CONFIG = ClickstreamConfig(
    start=dt.date(1999, 1, 1),
    end=dt.date(2000, 12, 31),
    domains_per_group=3,
    urls_per_domain=3,
    clicks_per_day=6,
    seed=1234,
)
FULL_NOW = dt.date(2001, 1, 15)

#: The smoke workload — small enough for CI, large enough to stay above
#: the columnar auto-dispatch threshold.
SMOKE_CONFIG = ClickstreamConfig(
    start=dt.date(2000, 1, 1),
    end=dt.date(2000, 12, 31),
    domains_per_group=2,
    urls_per_domain=2,
    clicks_per_day=4,
    seed=1234,
)
SMOKE_NOW = dt.date(2001, 1, 15)


@dataclass(frozen=True)
class BenchProfile:
    """One benchmark configuration (full or smoke)."""

    name: str
    config: ClickstreamConfig
    now: dt.date
    repeats: int


FULL_PROFILE = BenchProfile("full", FULL_CONFIG, FULL_NOW, repeats=5)
SMOKE_PROFILE = BenchProfile("smoke", SMOKE_CONFIG, SMOKE_NOW, repeats=3)


def _best_seconds(fn, repeats: int) -> float:
    """Minimum wall time over *repeats* runs (the usual noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


#: Generated workloads, one per profile: both suites (and every point
#: of a worker sweep) must time the *same* MO and specification, and
#: clickstream generation is itself expensive enough to dominate smoke
#: runs if repeated.
_WORKLOADS: dict[str, tuple] = {}


def _workload(profile: BenchProfile):
    cached = _WORKLOADS.get(profile.name)
    if cached is None:
        mo = build_clickstream_mo(profile.config)
        specification = ReductionSpecification(
            grouped_retention_actions(mo, detail_months=3, coarse_years=2),
            mo.dimensions,
        )
        cached = _WORKLOADS[profile.name] = (mo, specification)
    return cached


def _environment_block(workers_sweep: tuple[int, ...]) -> dict:
    return {
        "cpu_count": os.cpu_count() or 1,
        "workers_sweep": list(workers_sweep),
    }


def _atom_counts(cubes) -> dict[str, int]:
    return {cube.name: len(list(cube.predicate.atoms())) for cube in cubes}


def _disjoint_block(specification: ReductionSpecification) -> dict:
    """Static predicate-size effect of the semantic-analyzer pruning."""
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.use_registry(registry):
        pruned = disjoint_actions(specification)
    unpruned = disjoint_actions(specification, prune=False)
    kept = int(registry.value(DISJOINT_NEGATIONS, {"status": "kept"}) or 0)
    dropped = int(
        registry.value(DISJOINT_NEGATIONS, {"status": "pruned"}) or 0
    )
    before = _atom_counts(unpruned)
    after = _atom_counts(pruned)
    return {
        "negation_terms": {"kept": kept, "pruned": dropped},
        "atoms": {
            name: {"before": before[name], "after": after[name]}
            for name in sorted(before)
        },
        "atoms_before": sum(before.values()),
        "atoms_after": sum(after.values()),
    }


def _workload_block(profile: BenchProfile, mo) -> dict:
    config = profile.config
    return {
        "profile": profile.name,
        "facts": mo.n_facts,
        "start": config.start.isoformat(),
        "end": config.end.isoformat(),
        "domains_per_group": config.domains_per_group,
        "urls_per_domain": config.urls_per_domain,
        "clicks_per_day": config.clicks_per_day,
        "seed": config.seed,
    }


def bench_reduction(
    profile: BenchProfile,
    workers_sweep: tuple[int, ...] = DEFAULT_WORKERS_SWEEP,
) -> dict:
    """Time the three ``reduce_mo`` backends on the clickstream workload,
    then sweep the certificate-driven sharded path over *workers_sweep*.

    The sharded curve carries two speedup series: ``speedup_vs_serial``
    against the interpretive reference (the serial executable form of
    Definition 2 — the honest "how much faster than the baseline path"
    number), and ``speedup_vs_auto`` against the best serial backend the
    auto dispatcher would pick, which isolates what sharding itself buys
    on this machine.  ``efficiency`` is ``speedup_vs_serial / workers``.
    """
    from .parallel import ShardExecutor, reduce_mo_sharded
    from .reduction.reducer import reduce_mo

    mo, specification = _workload(profile)
    now = profile.now
    backends: dict[str, dict] = {}
    registry = obs_metrics.MetricsRegistry()
    with obs_metrics.use_registry(registry):
        for backend in ("interpretive", "compiled", "columnar"):
            reduced = reduce_mo(mo, specification, now, backend=backend)
            seconds = _best_seconds(
                lambda b=backend: reduce_mo(
                    mo, specification, now, backend=b
                ),
                profile.repeats,
            )
            backends[backend] = {
                "seconds": seconds,
                "ops_per_s": (1.0 / seconds) if seconds > 0 else None,
                "output_facts": reduced.n_facts,
            }
    interpretive = backends["interpretive"]["seconds"]
    auto_serial = min(
        backends[backend]["seconds"]
        for backend in ("interpretive", "compiled", "columnar")
    )
    sharded: list[dict] = []
    with obs_metrics.use_registry(registry):
        for workers in workers_sweep:
            executor = ShardExecutor(workers=workers)
            seconds = _best_seconds(
                lambda e=executor: reduce_mo_sharded(
                    mo, specification, now, executor=e
                ),
                profile.repeats,
            )
            sharded.append(
                {
                    "workers": workers,
                    "mode": (
                        "process" if executor.uses_processes else "serial"
                    ),
                    "seconds": seconds,
                    "ops_per_s": (1.0 / seconds) if seconds > 0 else None,
                    "speedup_vs_serial": interpretive / seconds,
                    "speedup_vs_auto": auto_serial / seconds,
                    "efficiency": interpretive / seconds / workers,
                }
            )
    return {
        "schema": REDUCTION_SCHEMA,
        "metrics": registry.snapshot(),
        "environment": _environment_block(workers_sweep),
        "workload": _workload_block(profile, mo),
        "now": now.isoformat(),
        "repeats": profile.repeats,
        "backends": backends,
        "sharded": {
            # What the curve is measured against: the interpretive
            # reference path (serial Definition 2) and the best serial
            # backend ("auto"), both timed above on this machine.
            "baseline": "interpretive",
            "baseline_seconds": interpretive,
            "auto_seconds": auto_serial,
            "curve": sharded,
        },
        "disjoint": _disjoint_block(specification),
        "speedup": {
            "compiled_vs_interpretive": interpretive
            / backends["compiled"]["seconds"],
            "columnar_vs_interpretive": interpretive
            / backends["columnar"]["seconds"],
        },
    }


def _bench_sync_sharded(
    profile: BenchProfile,
    facts: list,
    times: tuple[dt.date, ...],
    workers_sweep: tuple[int, ...],
) -> dict:
    """The sharded synchronization scaling curve.

    Each point replays the same NOW trajectory on a fresh store: one
    serial initial sync, then the advances through
    :func:`repro.parallel.sync.synchronize_sharded`.  The baseline is
    the production serial ``synchronize`` on an identical fresh store.
    """
    from .parallel import ShardExecutor

    mo, specification = _workload(profile)
    t1, *advances = times

    def trajectory(executor) -> float:
        best = float("inf")
        for _ in range(profile.repeats):
            store = SubcubeStore(mo, specification)
            store.load(facts)
            store.synchronize(t1)
            started = time.perf_counter()
            for at in advances:
                store.synchronize(at, executor=executor)
            best = min(best, time.perf_counter() - started)
        return best

    baseline = trajectory(None)
    curve = []
    for workers in workers_sweep:
        executor = ShardExecutor(workers=workers)
        seconds = trajectory(executor)
        curve.append(
            {
                "workers": workers,
                "mode": "process" if executor.uses_processes else "serial",
                "seconds": seconds,
                "speedup_vs_serial": baseline / seconds if seconds else None,
            }
        )
    return {"baseline_seconds": baseline, "curve": curve}


def bench_sync(
    profile: BenchProfile,
    durable_path: str | None = None,
    fsync: bool = True,
    workers_sweep: tuple[int, ...] = DEFAULT_WORKERS_SWEEP,
) -> dict:
    """Measure incremental vs full-rescan synchronization work.

    Two stores replay the same trajectory — an initial sync followed by
    two NOW advances — one on the incremental path, one forcing full
    rescans.  Each step records the facts *examined* (the work metric the
    suspect-region analysis reduces) and wall time.

    With *durable_path*, the incremental store runs through the
    crash-safe :class:`~repro.engine.durable.DurableStore`, so the
    journaling/fsync overhead shows up in the incremental timings and an
    extra ``durable`` block lands in the document.
    """
    mo, specification = _workload(profile)
    facts = [
        (
            fact_id,
            dict(zip(mo.schema.dimension_names, mo.direct_cell(fact_id))),
            {
                name: mo.measure_value(fact_id, name)
                for name in mo.schema.measure_names
            },
        )
        for fact_id in mo.facts()
    ]
    t1 = profile.now
    t2 = t1 + dt.timedelta(days=45)
    t3 = t2 + dt.timedelta(days=45)

    registry = obs_metrics.MetricsRegistry()
    if durable_path is not None:
        from .engine.durable import DurableStore

        incremental = DurableStore.create(
            durable_path, mo, specification, fsync=fsync, metrics=registry
        )
    else:
        incremental = SubcubeStore(mo, specification, metrics=registry)
    incremental.load(facts)
    incremental.synchronize(t1)
    full = SubcubeStore(mo, specification)
    full.load(facts)
    full.synchronize(t1, incremental=False)

    steps = []
    for at in (t2, t3):
        started = time.perf_counter()
        moved_incremental = incremental.synchronize(at)
        seconds_incremental = time.perf_counter() - started
        examined_incremental = int(
            incremental.metrics.value(SYNC_LAST_EXAMINED) or 0
        )
        started = time.perf_counter()
        moved_full = full.synchronize(at, incremental=False)
        seconds_full = time.perf_counter() - started
        examined_full = int(full.metrics.value(SYNC_LAST_EXAMINED) or 0)
        steps.append(
            {
                "now": at.isoformat(),
                "incremental": {
                    "examined": examined_incremental,
                    "moved": sum(moved_incremental.values()),
                    "seconds": seconds_incremental,
                },
                "full": {
                    "examined": examined_full,
                    "moved": sum(moved_full.values()),
                    "seconds": seconds_full,
                },
                "total_facts": incremental.total_facts(),
            }
        )
    examined_incremental_total = sum(s["incremental"]["examined"] for s in steps)
    examined_full_total = sum(s["full"]["examined"] for s in steps)
    document = {
        "schema": SYNC_SCHEMA,
        # The incremental store's registry: sync counters/gauges, and
        # with --durable the journal/snapshot families too.  The full
        # store keeps its own registry (same gauge names) out of the doc.
        "metrics": registry.snapshot(),
        "environment": _environment_block(workers_sweep),
        "workload": _workload_block(profile, mo),
        "sharded": _bench_sync_sharded(
            profile, facts, (t1, t2, t3), workers_sweep
        ),
        "initial_sync": t1.isoformat(),
        "steps": steps,
        "examined": {
            "incremental": examined_incremental_total,
            "full": examined_full_total,
            "saved": examined_full_total - examined_incremental_total,
        },
    }
    if durable_path is not None:
        audit = incremental.verify()
        document["durable"] = {
            "path": durable_path,
            "fsync": fsync,
            "journal_lsn": incremental.journal_lsn,
            "audit_ok": audit.ok,
        }
        incremental.snapshot()
        incremental.close()
    return document


def run_benchmarks(
    out_dir: str = ".",
    smoke: bool = False,
    repeats: int | None = None,
    durable_path: str | None = None,
    fsync: bool = True,
    workers: tuple[int, ...] | None = None,
) -> dict[str, str]:
    """Run both suites and write the BENCH documents; returns the paths.

    *workers* sets the shard-scaling sweep; 1 is always included so the
    curves carry their own single-worker anchor.  The documents are
    written atomically (temp file + rename), so an interrupted benchmark
    run never truncates an existing trajectory.
    """
    from .io import atomic_write

    profile = SMOKE_PROFILE if smoke else FULL_PROFILE
    if repeats is not None:
        profile = BenchProfile(profile.name, profile.config, profile.now, repeats)
    sweep = (
        tuple(sorted({1, *workers})) if workers else DEFAULT_WORKERS_SWEEP
    )
    documents = {
        "BENCH_reduction.json": bench_reduction(profile, workers_sweep=sweep),
        "BENCH_sync.json": bench_sync(
            profile,
            durable_path=durable_path,
            fsync=fsync,
            workers_sweep=sweep,
        ),
    }
    os.makedirs(out_dir, exist_ok=True)
    paths: dict[str, str] = {}
    for filename, document in documents.items():
        path = os.path.join(out_dir, filename)
        with atomic_write(path) as stream:
            json.dump(document, stream, indent=1, sort_keys=True)
            stream.write("\n")
        paths[filename] = path
    return paths
