"""Crash-safe persistence for the subcube store.

The paper's reduction semantics (Definition 2) *irreversibly* deletes
detail facts once they are aggregated, and the Section 7.2 architecture
migrates facts between mutable subcubes on every ``NOW`` advance — so a
process crash mid-``synchronize`` would silently lose facts that were
removed from a fine cube but never inserted into their target.  This
module makes every store mutation durable and atomic:

* an append-only **write-ahead journal** (``journal.jsonl``): one JSON
  record per line for ``load``, ``sync_begin``, ``migrate``,
  ``sync_commit``, ``rebuild``, ``reduce``, and ``abort``, each with a
  monotonically increasing LSN and a CRC-32 checksum, fsynced at commit
  points;
* **atomic snapshots** (``snapshots/snap-<lsn>.json`` + a ``CURRENT``
  manifest): the whole store serialized per cube via
  :func:`repro.io.mo_to_dict`, written temp-file-first and published
  with ``os.replace`` so a crash never corrupts the previous snapshot;
* **recovery** (:func:`open_durable`): load the latest valid snapshot,
  replay the journal tail, discard torn or checksum-failing trailing
  records, and skip uncommitted transactions — the recovered store is
  always bit-for-bit equal to a pre- or post-operation state, never
  anything in between (property-tested per failpoint in
  ``tests/engine/test_crash_recovery.py``);
* deterministic **fault injection** (:mod:`repro.engine.faults`): every
  dangerous site consults a named failpoint, so tests can kill the
  process at each of them and prove recovery.

Layout of a durable store directory::

    meta.json        {"format": 1}
    template.json    the empty warehouse (schema + dimension values)
    spec.txt         the specification the store was created with
    journal.jsonl    the write-ahead journal
    snapshots/       snap-<lsn>.json snapshot documents
    CURRENT          manifest naming the latest published snapshot

Measure values and coordinates must be JSON-serializable (strings,
numbers, booleans) for a store to be durable — the same restriction
:func:`repro.io.mo_to_dict` already imposes.
"""

from __future__ import annotations

import datetime as _dt
import io as _stdio
import json
import os
import zlib
from dataclasses import dataclass
from typing import Iterable, Mapping, NamedTuple

from ..core.facts import Provenance
from ..core.mo import MultidimensionalObject
from ..errors import DurabilityError, RecoveryError, ReproError
from ..io import (
    atomic_write,
    dump_specification,
    fsync_directory,
    load_specification,
    mo_from_dict,
    mo_to_dict,
)
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..spec.specification import ReductionSpecification
from .faults import PASSIVE, FaultInjector, InjectedFault
from .store import SYNC_LAST_EXAMINED, Migration, SubcubeStore

FORMAT_VERSION = 1

# Durability metric families (registered in engine/telemetry.py,
# catalogued in docs/observability.md).
from .telemetry import (  # noqa: E402
    JOURNAL_BYTES,
    JOURNAL_FSYNC,
    JOURNAL_RECORDS,
    RECOVERY_ABORTED,
    RECOVERY_DISCARDED,
    RECOVERY_REPLAYED,
    SNAPSHOT_WRITES,
)

META_FILE = "meta.json"
TEMPLATE_FILE = "template.json"
SPEC_FILE = "spec.txt"
JOURNAL_FILE = "journal.jsonl"
SNAPSHOT_DIR = "snapshots"
MANIFEST_FILE = "CURRENT"


def _crc(body: Mapping[str, object]) -> int:
    """CRC-32 over the canonical JSON encoding of a record body."""
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


class JournalRecord(NamedTuple):
    lsn: int
    op: str
    data: dict


class Journal:
    """The append-only write-ahead journal, one checksummed record per line.

    A record line is the canonical JSON of ``{"lsn", "op", "data"}`` plus
    a ``crc`` field computed over the other three.  Appends go through
    the ``journal.append``/``journal.torn``/``journal.fsync`` failpoints;
    ``sync=True`` marks a commit point and fsyncs the file.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        faults: FaultInjector = PASSIVE,
        next_lsn: int = 1,
        truncate_to: int | None = None,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        self.path = path
        self._fsync = fsync
        self._faults = faults
        self._next_lsn = next_lsn
        #: Shared with the owning store once a :class:`DurableStore`
        #: adopts this journal, so journal and sync telemetry land in one
        #: registry.
        self.metrics = (
            metrics if metrics is not None else obs_metrics.MetricsRegistry()
        )
        if truncate_to is not None and os.path.exists(path):
            if os.path.getsize(path) > truncate_to:
                # Drop the torn/corrupt tail so new appends start on a
                # clean line boundary.
                with open(path, "r+b") as stream:
                    stream.truncate(truncate_to)
        self._stream = open(path, "a", encoding="utf-8")

    @property
    def last_lsn(self) -> int:
        return self._next_lsn - 1

    def append(self, op: str, data: dict, *, sync: bool = False) -> int:
        self._faults.hit("journal.append")
        lsn = self._next_lsn
        body = {"lsn": lsn, "op": op, "data": data}
        record = dict(body)
        record["crc"] = _crc(body)
        line = json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        try:
            self._faults.hit("journal.torn")
        except InjectedFault:
            # Simulate a torn write: a prefix of the record reaches the
            # file, then the process dies.  Recovery must discard it.
            self._stream.write(line[: max(1, len(line) // 2)])
            self._stream.flush()
            raise
        try:
            # Disk failpoints model the write itself failing (full disk,
            # I/O error), so they raise from inside the same handler a
            # real OSError would.
            self._faults.hit("disk.enospc")
            self._faults.hit("disk.eio")
            self._stream.write(line)
            self._stream.flush()
        except OSError as exc:
            raise DurabilityError(
                f"journal append failed at lsn {lsn}: {exc}"
            ) from exc
        if sync and self._fsync:
            self._faults.hit("journal.fsync")
            os.fsync(self._stream.fileno())
            self.metrics.counter(
                JOURNAL_FSYNC, help="fsync() calls on the journal file."
            ).inc()
        self._next_lsn = lsn + 1
        self.metrics.counter(
            JOURNAL_RECORDS,
            {"op": op},
            help="Records appended to the journal, by operation.",
        ).inc()
        self.metrics.counter(
            JOURNAL_BYTES, help="Bytes appended to the journal."
        ).inc(len(line.encode("utf-8")))
        return lsn

    def close(self) -> None:
        if not self._stream.closed:
            self._stream.close()

    @staticmethod
    def scan(path: str) -> tuple[list[JournalRecord], int, int]:
        """Read and validate a journal file.

        Returns ``(records, valid_bytes, discarded)``: the prefix of
        records that parse, checksum, and carry contiguous LSNs starting
        at 1; the byte length of that valid prefix (so the caller can
        truncate a torn tail before appending); and how many trailing
        lines were discarded as torn or corrupt.
        """
        records: list[JournalRecord] = []
        valid_bytes = 0
        discarded = 0
        if not os.path.exists(path):
            return records, 0, 0
        with open(path, "rb") as stream:
            blob = stream.read()
        offset = 0
        expected_lsn = 1
        while offset < len(blob):
            newline = blob.find(b"\n", offset)
            if newline < 0:
                discarded += 1  # torn final record, no line terminator
                break
            line = blob[offset:newline]
            try:
                record = json.loads(line.decode("utf-8"))
                crc = record.pop("crc")
                if not isinstance(record.get("data"), dict):
                    raise ValueError("data must be an object")
                if crc != _crc(record):
                    raise ValueError("checksum mismatch")
                if record.get("lsn") != expected_lsn:
                    raise ValueError("non-contiguous lsn")
                op = record["op"]
            except (ValueError, KeyError, TypeError, UnicodeDecodeError):
                # The journal is only trusted up to its first bad record:
                # everything from here on may be an artifact of the crash.
                discarded += sum(
                    1 for piece in blob[offset:].split(b"\n") if piece
                )
                break
            records.append(JournalRecord(expected_lsn, op, record["data"]))
            expected_lsn += 1
            offset = newline + 1
            valid_bytes = offset
        return records, valid_bytes, discarded


@dataclass
class RecoveryReport:
    """What :func:`open_durable` found and did."""

    snapshot_lsn: int | None = None
    last_lsn: int = 0
    replayed: int = 0
    discarded: int = 0
    aborted: int = 0
    interrupted_sync: _dt.date | None = None

    def as_dict(self) -> dict[str, object]:
        return {
            "snapshot_lsn": self.snapshot_lsn,
            "last_lsn": self.last_lsn,
            "replayed": self.replayed,
            "discarded": self.discarded,
            "aborted": self.aborted,
            "interrupted_sync": (
                self.interrupted_sync.isoformat()
                if self.interrupted_sync
                else None
            ),
        }


class DurableStore(SubcubeStore):
    """A :class:`SubcubeStore` whose every mutation is journaled.

    Mutations follow write-ahead discipline: the journal record is
    appended before (``load``) or interleaved with (``migrate``) the
    in-memory change, and a transaction only becomes durable when its
    commit record (``load`` itself, or ``sync_commit``) is fsynced.
    Recovery ignores transactions whose commit never reached the disk,
    so a crashed process resumes at the last committed state.
    """

    def __init__(
        self,
        template: MultidimensionalObject,
        specification: ReductionSpecification,
        path: str,
        *,
        journal: Journal,
        fsync: bool = True,
        faults: FaultInjector | None = None,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        super().__init__(template, specification, metrics=metrics)
        # The journal reports into the store's registry from here on, so
        # one snapshot carries both sync and durability telemetry.
        journal.metrics = self.metrics
        self.path = path
        self._fsync_enabled = fsync
        self._faults = _resolve_faults(faults)
        self._journal = journal
        #: Source fact id -> its measure values as loaded, reconstructed
        #: from the journal on recovery; the baseline for :meth:`verify`.
        self._source_measures: dict[str, dict[str, object]] = {}
        self._replaying = False
        self._pending_load_prior: dict[str, dict[str, object] | None] = {}
        self._pending_load_lsn: int | None = None
        self._sync_begin_lsn: int | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        template: MultidimensionalObject,
        specification: ReductionSpecification,
        *,
        fsync: bool = True,
        faults: FaultInjector | None = None,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> "DurableStore":
        """Initialize a fresh durable store directory."""
        journal_path = os.path.join(path, JOURNAL_FILE)
        if os.path.exists(journal_path):
            raise DurabilityError(
                f"{path!r} already holds a durable store; use open_durable()"
            )
        os.makedirs(os.path.join(path, SNAPSHOT_DIR), exist_ok=True)
        with atomic_write(os.path.join(path, META_FILE), fsync=fsync) as s:
            json.dump({"format": FORMAT_VERSION}, s)
        with atomic_write(os.path.join(path, TEMPLATE_FILE), fsync=fsync) as s:
            json.dump(
                mo_to_dict(template.empty_like()), s, sort_keys=True
            )
        with atomic_write(os.path.join(path, SPEC_FILE), fsync=fsync) as s:
            dump_specification(specification, s)
        injector = _resolve_faults(faults)
        journal = Journal(journal_path, fsync=fsync, faults=injector)
        return cls(
            template,
            specification,
            path,
            journal=journal,
            fsync=fsync,
            faults=injector,
            metrics=metrics,
        )

    def close(self) -> None:
        self._journal.close()

    def __enter__(self) -> "DurableStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def journal_lsn(self) -> int:
        return self._journal.last_lsn

    @property
    def source_measures(self) -> Mapping[str, Mapping[str, object]]:
        return self._source_measures

    # ------------------------------------------------------------------
    # Journaling hooks (write-ahead discipline)
    # ------------------------------------------------------------------

    def _journal_load(
        self,
        staged: list[tuple[str, dict[str, str], dict[str, object]]],
    ) -> None:
        prior = {
            fact_id: self._source_measures.get(fact_id)
            for fact_id, _, _ in staged
        }
        if not self._replaying:
            self._pending_load_lsn = self._journal.append(
                "load",
                {
                    "facts": [
                        {
                            "id": fact_id,
                            "coordinates": coordinates,
                            "measures": measures,
                        }
                        for fact_id, coordinates, measures in staged
                    ]
                },
                sync=True,
            )
        self._pending_load_prior = prior
        for fact_id, _, measures in staged:
            self._source_measures[fact_id] = dict(measures)

    def _load_fault(self, index: int, fact_id: str) -> None:
        if not self._replaying:
            self._faults.hit("load.insert")

    def _journal_load_failed(self, exc: BaseException) -> None:
        for fact_id, prior in self._pending_load_prior.items():
            if prior is None:
                self._source_measures.pop(fact_id, None)
            else:
                self._source_measures[fact_id] = prior
        self._pending_load_prior = {}
        if self._replaying or isinstance(exc, InjectedFault):
            # An injected fault models a dead process: nothing more is
            # written, and recovery decides the batch's fate.
            return
        if self._pending_load_lsn is not None:
            self._journal.append(
                "abort",
                {"undoes": self._pending_load_lsn, "reason": str(exc)},
                sync=True,
            )
            self._pending_load_lsn = None

    def _journal_sync_begin(self, now: _dt.date, incremental: bool) -> None:
        if self._replaying:
            return
        self._sync_begin_lsn = self._journal.append(
            "sync_begin",
            {"at": now.isoformat(), "incremental": incremental},
        )

    def _journal_migrate(self, migration: Migration) -> None:
        if self._replaying:
            return
        self._journal.append(
            "migrate",
            {
                "fact": migration.fact_id,
                "from": migration.source,
                "to": migration.target,
                "coordinates": dict(migration.coordinates),
                "measures": dict(migration.measures),
                "members": sorted(migration.provenance.members),
            },
        )
        self._faults.hit("sync.migrate")

    def _journal_sync_commit(
        self, now: _dt.date, moved: Mapping[str, int], examined: int
    ) -> None:
        if self._replaying:
            return
        self._journal.append(
            "sync_commit",
            {
                "at": now.isoformat(),
                "moved": dict(moved),
                "examined": examined,
            },
            sync=True,
        )

    def _journal_sync_failed(self, exc: BaseException) -> None:
        if self._replaying or isinstance(exc, InjectedFault):
            return
        if self._sync_begin_lsn is not None:
            self._journal.append(
                "abort",
                {"undoes": self._sync_begin_lsn, "reason": str(exc)},
                sync=True,
            )
            self._sync_begin_lsn = None

    def _journal_sync_begin_sharded(
        self, now: _dt.date, incremental: bool
    ) -> int | None:
        if self._replaying:
            return None
        self._sync_begin_lsn = self._journal.append(
            "sync_begin_sharded",
            {"at": now.isoformat(), "incremental": incremental},
        )
        return self._sync_begin_lsn

    def _journal_sync_commit_sharded(
        self,
        now: _dt.date,
        moved: Mapping[str, int],
        examined: int,
        segments: list[tuple[str, int]],
    ) -> None:
        if self._replaying:
            return
        # Workers already fsynced their per-shard migration segments;
        # this single record is what makes them all count.
        self._journal.append(
            "sync_commit_sharded",
            {
                "at": now.isoformat(),
                "moved": dict(moved),
                "examined": examined,
                "segments": [
                    {"file": filename, "records": records}
                    for filename, records in segments
                ],
            },
            sync=True,
        )

    def _journal_sync_failed_sharded(
        self, exc: BaseException, segments: list[tuple[str, int]]
    ) -> None:
        if self._replaying or isinstance(exc, InjectedFault):
            # A modeled crash writes nothing more; recovery skips the
            # uncommitted sync and sweeps its orphaned segments.
            return
        if self._sync_begin_lsn is not None:
            self._journal.append(
                "abort",
                {"undoes": self._sync_begin_lsn, "reason": str(exc)},
                sync=True,
            )
            self._sync_begin_lsn = None
        for filename, _ in segments:
            try:
                os.remove(os.path.join(self.path, filename))
            except OSError:
                pass

    def _journal_rebuild(self, now: _dt.date) -> None:
        if self._replaying:
            return
        spec_stream = _stdio.StringIO()
        dump_specification(self._specification, spec_stream)
        self._journal.append(
            "rebuild",
            {"at": now.isoformat(), "spec": spec_stream.getvalue()},
            sync=True,
        )
        # A rebuild rewires the cube set, which physical migrate replay
        # cannot cross; publishing a snapshot right away makes the new
        # shape the recovery baseline.
        self.snapshot()

    def record_reduce(self, at: _dt.date, **info: object) -> int:
        """Journal a ``reduce`` audit record (CLI ``reduce --durable``)."""
        return self._journal.append(
            "reduce", {"at": at.isoformat(), **info}, sync=True
        )

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------

    def snapshot(self) -> str:
        """Atomically publish a snapshot covering the journal so far.

        Write-temp → fsync → ``os.replace`` for the snapshot document,
        then the same dance for the ``CURRENT`` manifest; a crash at any
        point leaves the previous snapshot (or none) fully intact.
        """
        self._faults.hit("snapshot.write")
        lsn = self._journal.last_lsn
        spec_stream = _stdio.StringIO()
        dump_specification(self._specification, spec_stream)
        body = {
            "format": FORMAT_VERSION,
            "lsn": lsn,
            "last_sync": (
                self.last_sync.isoformat() if self.last_sync else None
            ),
            "last_sync_examined": int(
                self.metrics.value(SYNC_LAST_EXAMINED) or 0
            ),
            "dirty": sorted(self._dirty),
            "spec": spec_stream.getvalue(),
            "cubes": {
                name: mo_to_dict(cube.mo)
                for name, cube in self.cubes.items()
            },
        }
        crc = _crc(body)
        directory = os.path.join(self.path, SNAPSHOT_DIR)
        os.makedirs(directory, exist_ok=True)
        filename = f"snap-{lsn:012d}.json"
        final_path = os.path.join(directory, filename)
        tmp_path = final_path + ".tmp"
        # A full or failing disk surfaces here as a realistic OSError
        # (never a half-published snapshot: the write-temp → rename
        # protocol below leaves the previous snapshot untouched).
        self._faults.hit("disk.enospc")
        self._faults.hit("disk.eio")
        with open(tmp_path, "w", encoding="utf-8") as stream:
            json.dump({"crc": crc, "snapshot": body}, stream, sort_keys=True)
            stream.flush()
            self._faults.hit("snapshot.fsync")
            if self._fsync_enabled:
                os.fsync(stream.fileno())
        self._faults.hit("snapshot.rename")
        os.replace(tmp_path, final_path)
        if self._fsync_enabled:
            fsync_directory(directory)
        self._faults.hit("snapshot.manifest")
        with atomic_write(
            os.path.join(self.path, MANIFEST_FILE), fsync=self._fsync_enabled
        ) as stream:
            json.dump({"file": filename, "lsn": lsn, "crc": crc}, stream)
        self.metrics.counter(
            SNAPSHOT_WRITES, help="Snapshots atomically published."
        ).inc()
        return final_path

    # ------------------------------------------------------------------
    # Audit
    # ------------------------------------------------------------------

    def verify(self, sources=None, *, strict: bool = False):
        """Audit invariants against the journal-derived source baseline."""
        if sources is None:
            sources = self._source_measures
        return super().verify(sources, strict=strict)


def _resolve_faults(faults: FaultInjector | None) -> FaultInjector:
    if faults is not None:
        return faults
    if os.environ.get("REPRO_FAILPOINTS"):
        return FaultInjector.from_environment()
    return PASSIVE


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------

def open_durable(
    path: str,
    *,
    fsync: bool = True,
    faults: FaultInjector | None = None,
    metrics: obs_metrics.MetricsRegistry | None = None,
) -> tuple[DurableStore, RecoveryReport]:
    """Recover a durable store from its directory.

    Loads the newest valid snapshot (falling back through older ones if
    the manifest or the newest document is damaged), replays the journal
    tail, truncates torn trailing bytes, and reports what happened.  An
    interrupted synchronization — ``sync_begin`` without a matching
    ``sync_commit`` — is *not* applied: the store recovers to the
    pre-sync state and the report carries the interrupted time so the
    caller can re-run it idempotently.
    """
    meta_path = os.path.join(path, META_FILE)
    if not os.path.exists(meta_path):
        raise RecoveryError(f"{path!r} is not a durable store (no meta.json)")
    try:
        with open(meta_path, encoding="utf-8") as stream:
            meta = json.load(stream)
    except (OSError, ValueError) as exc:
        raise RecoveryError(f"cannot read {meta_path!r}: {exc}") from exc
    if meta.get("format") != FORMAT_VERSION:
        raise RecoveryError(
            f"unsupported durable store format {meta.get('format')!r}"
        )
    try:
        with open(
            os.path.join(path, TEMPLATE_FILE), encoding="utf-8"
        ) as stream:
            template = mo_from_dict(json.load(stream))
    except (OSError, ValueError) as exc:
        raise RecoveryError(f"cannot load store template: {exc}") from exc

    journal_path = os.path.join(path, JOURNAL_FILE)
    records, valid_bytes, discarded = Journal.scan(journal_path)
    snapshot = _load_latest_snapshot(path)

    if snapshot is not None:
        spec_text = snapshot["spec"]
        snapshot_lsn = int(snapshot["lsn"])
    else:
        try:
            with open(
                os.path.join(path, SPEC_FILE), encoding="utf-8"
            ) as stream:
                spec_text = stream.read()
        except OSError as exc:
            raise RecoveryError(f"cannot load specification: {exc}") from exc
        snapshot_lsn = 0

    try:
        specification = load_specification(
            _stdio.StringIO(spec_text), template.schema, template.dimensions
        )
    except ReproError as exc:
        raise RecoveryError(f"cannot parse specification: {exc}") from exc

    injector = _resolve_faults(faults)
    journal = Journal(
        journal_path,
        fsync=fsync,
        faults=injector,
        next_lsn=(records[-1].lsn + 1) if records else 1,
        truncate_to=valid_bytes,
    )
    store = DurableStore(
        template,
        specification,
        path,
        journal=journal,
        fsync=fsync,
        faults=injector,
        metrics=metrics,
    )
    report = RecoveryReport(
        snapshot_lsn=snapshot_lsn if snapshot is not None else None,
        last_lsn=records[-1].lsn if records else 0,
        discarded=discarded,
    )
    store._replaying = True
    try:
        with trace.span(
            "recover.open", path=path, records=len(records)
        ) as recover_span:
            if snapshot is not None:
                _restore_snapshot(store, snapshot)
            _replay(store, records, snapshot_lsn, report)
            _sweep_orphan_segments(path, records)
            recover_span.set_attribute("replayed", report.replayed)
            recover_span.set_attribute("discarded", report.discarded)
    except RecoveryError:
        raise
    except ReproError as exc:
        raise RecoveryError(f"journal replay failed: {exc}") from exc
    finally:
        store._replaying = False
    metrics = store.metrics
    metrics.gauge(
        RECOVERY_REPLAYED,
        help="Journal records the last recovery physically replayed.",
    ).set(report.replayed)
    metrics.gauge(
        RECOVERY_DISCARDED,
        help="Torn or corrupt trailing records the last recovery dropped.",
    ).set(report.discarded)
    metrics.gauge(
        RECOVERY_ABORTED,
        help="Uncommitted transactions the last recovery skipped.",
    ).set(report.aborted)
    return store, report


def _load_latest_snapshot(path: str) -> dict | None:
    """The newest snapshot body that exists and checksums, else None.

    Tries the ``CURRENT`` manifest first, then falls back to scanning
    the snapshot directory newest-first — a crash between publishing a
    snapshot and updating the manifest must not hide the older ones.
    """
    directory = os.path.join(path, SNAPSHOT_DIR)
    candidates: list[str] = []
    manifest_path = os.path.join(path, MANIFEST_FILE)
    if os.path.exists(manifest_path):
        try:
            with open(manifest_path, encoding="utf-8") as stream:
                manifest = json.load(stream)
            candidates.append(os.path.join(directory, manifest["file"]))
        except (OSError, ValueError, KeyError, TypeError):
            pass
    if os.path.isdir(directory):
        candidates.extend(
            os.path.join(directory, name)
            for name in sorted(os.listdir(directory), reverse=True)
            if name.startswith("snap-") and name.endswith(".json")
        )
    for candidate in candidates:
        try:
            with open(candidate, encoding="utf-8") as stream:
                document = json.load(stream)
            body = document["snapshot"]
            if document["crc"] != _crc(body):
                continue
            if body.get("format") != FORMAT_VERSION:
                continue
            return body
        except (OSError, ValueError, KeyError, TypeError):
            continue
    return None


def _restore_snapshot(store: DurableStore, snapshot: Mapping) -> None:
    for name, cube_document in snapshot["cubes"].items():
        try:
            cube = store.cube(name)
        except ReproError as exc:
            raise RecoveryError(
                f"snapshot names unknown cube {name!r}: {exc}"
            ) from exc
        for fact in cube_document["facts"]:
            cube.mo.insert_aggregate_fact(
                fact["id"],
                fact["coordinates"],
                fact["measures"],
                Provenance(frozenset(fact["members"])),
            )
    if snapshot.get("last_sync"):
        store.last_sync = _dt.date.fromisoformat(snapshot["last_sync"])
    store.metrics.gauge(SYNC_LAST_EXAMINED).set(
        int(snapshot.get("last_sync_examined", 0))
    )
    store._dirty = set(snapshot.get("dirty", ()))


def _replay(
    store: DurableStore,
    records: Iterable[JournalRecord],
    snapshot_lsn: int,
    report: RecoveryReport,
) -> None:
    aborted = {
        record.data.get("undoes")
        for record in records
        if record.op == "abort"
    }
    open_sync: dict | None = None
    for record in records:
        if record.op == "load":
            # Source-measure bookkeeping spans the whole journal, even
            # the part a snapshot already covers.
            if record.lsn not in aborted:
                for fact in record.data["facts"]:
                    store._source_measures[fact["id"]] = dict(
                        fact["measures"]
                    )
        if record.lsn <= snapshot_lsn:
            continue
        if record.op == "load":
            if record.lsn in aborted:
                report.aborted += 1
                continue
            facts = [
                (fact["id"], fact["coordinates"], fact["measures"])
                for fact in record.data["facts"]
            ]
            try:
                store.load(facts)
            except ReproError:
                # The batch failed before its crash too (deterministic);
                # the rollback inside load() already undid the staging.
                report.aborted += 1
                continue
            report.replayed += 1
        elif record.op in ("sync_begin", "sync_begin_sharded"):
            open_sync = {
                "at": _dt.date.fromisoformat(record.data["at"]),
                "lsn": record.lsn,
                "migrations": [],
            }
        elif record.op == "migrate":
            if open_sync is not None:
                open_sync["migrations"].append(record.data)
        elif record.op == "sync_commit":
            if open_sync is None:
                raise RecoveryError(
                    f"sync_commit at lsn {record.lsn} without sync_begin"
                )
            _replay_sync(store, open_sync, record.data)
            open_sync = None
            report.replayed += 1
        elif record.op == "sync_commit_sharded":
            if open_sync is None:
                raise RecoveryError(
                    f"sync_commit_sharded at lsn {record.lsn} "
                    "without sync_begin_sharded"
                )
            open_sync["migrations"] = _scan_shard_segments(
                store.path, record.data
            )
            _replay_sync(store, open_sync, record.data)
            open_sync = None
            report.replayed += 1
        elif record.op == "abort":
            if (
                open_sync is not None
                and record.data.get("undoes") == open_sync["lsn"]
            ):
                open_sync = None
                report.aborted += 1
        elif record.op == "rebuild":
            specification = load_specification(
                _stdio.StringIO(record.data["spec"]),
                store._template.schema,
                store._template.dimensions,
            )
            store.rebuild(
                specification, _dt.date.fromisoformat(record.data["at"])
            )
            report.replayed += 1
        elif record.op == "reduce":
            continue  # informational audit record
        else:
            raise RecoveryError(
                f"unknown journal op {record.op!r} at lsn {record.lsn}"
            )
    if open_sync is not None:
        # sync_begin without sync_commit: the transaction never became
        # durable.  Leave the store at the pre-sync state; the caller
        # can re-run synchronize(at) idempotently.
        report.interrupted_sync = open_sync["at"]


def _scan_shard_segments(path: str, commit: Mapping) -> list[dict]:
    """Validate and collect a committed sharded sync's segment records.

    Every segment the commit record names must exist, parse, end in a
    ``shard_commit`` record, and carry exactly the advertised number of
    ``shard_migrate`` records — the commit only became durable *after*
    the workers fsynced their segments, so anything else is corruption.
    The migrations are returned in global apply order
    (``(cube_index, index)``), which is the serial examination order.
    """
    migrations: list[dict] = []
    for segment in commit.get("segments", ()):
        filename = segment["file"]
        segment_path = os.path.join(path, filename)
        if not os.path.exists(segment_path):
            raise RecoveryError(
                f"committed shard segment {filename!r} is missing"
            )
        records, _, _ = Journal.scan(segment_path)
        if not records or records[-1].op != "shard_commit":
            raise RecoveryError(
                f"shard segment {filename!r} has no commit record"
            )
        body = [
            record.data for record in records if record.op == "shard_migrate"
        ]
        expected = int(segment.get("records", -1))
        stamped = int(records[-1].data.get("records", -1))
        if len(body) != expected or len(body) != stamped:
            raise RecoveryError(
                f"shard segment {filename!r} holds {len(body)} migrations; "
                f"expected {expected} (commit stamp {stamped})"
            )
        migrations.extend(body)
    migrations.sort(key=lambda m: (m.get("cube_index", 0), m.get("index", 0)))
    return migrations


def _sweep_orphan_segments(
    path: str, records: Iterable[JournalRecord]
) -> None:
    """Delete shard segments no committed sharded sync references.

    A crash between segment writes and the ``sync_commit_sharded``
    record leaves orphan ``journal.shard-*.jsonl`` files; they belong to
    a synchronization that never happened and must not survive recovery.
    Referenced segments are kept — an older snapshot may still need
    them on a future recovery.
    """
    referenced = {
        segment["file"]
        for record in records
        if record.op == "sync_commit_sharded"
        for segment in record.data.get("segments", ())
    }
    try:
        names = os.listdir(path)
    except OSError:
        return
    for name in names:
        if (
            name.startswith("journal.shard-")
            and name.endswith(".jsonl")
            and name not in referenced
        ):
            try:
                os.remove(os.path.join(path, name))
            except OSError:
                pass


def _replay_sync(
    store: DurableStore, open_sync: dict, commit: Mapping
) -> None:
    """Physically re-apply a committed synchronization's migrations."""
    for migration in open_sync["migrations"]:
        source = store.cube(migration["from"])
        target = store.cube(migration["to"])
        source.remove(migration["fact"])
        target.insert_at_granularity(
            migration["coordinates"],
            migration["measures"],
            Provenance(frozenset(migration["members"])),
        )
    store.last_sync = _dt.date.fromisoformat(commit["at"])
    store.metrics.gauge(SYNC_LAST_EXAMINED).set(
        int(commit.get("examined", 0))
    )
    store._dirty.clear()
