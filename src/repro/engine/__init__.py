"""The Section 7 implementation strategy: disjoint actions and subcubes."""

from .disjoint import DisjointAction, disjoint_actions
from .durable import (
    DurableStore,
    Journal,
    JournalRecord,
    RecoveryReport,
    open_durable,
)
from .faults import (
    FAILPOINTS,
    SERVING_FAILPOINTS,
    SHARD_FAILPOINTS,
    DiskFault,
    FaultInjector,
    InjectedFault,
    SlowFault,
)
from .planner import CubePlanStep, QueryPlan, explain_plan
from .queryproc import (
    QueryPlanCache,
    SubcubeQuery,
    combine_subresults,
    effective_content,
    plan_cache,
    query_cube,
    query_store,
)
from .store import AuditReport, Migration, SubcubeStore
from .subcube import SubCube
from .sync import (
    MigrationEvent,
    SyncScheduler,
    flow_report,
    significant_period_days,
)

__all__ = [
    "AuditReport",
    "CubePlanStep",
    "DisjointAction",
    "DiskFault",
    "DurableStore",
    "FAILPOINTS",
    "FaultInjector",
    "InjectedFault",
    "SERVING_FAILPOINTS",
    "SHARD_FAILPOINTS",
    "SlowFault",
    "Journal",
    "JournalRecord",
    "Migration",
    "QueryPlan",
    "explain_plan",
    "MigrationEvent",
    "QueryPlanCache",
    "RecoveryReport",
    "SubCube",
    "SubcubeQuery",
    "SubcubeStore",
    "SyncScheduler",
    "combine_subresults",
    "disjoint_actions",
    "effective_content",
    "flow_report",
    "open_durable",
    "plan_cache",
    "query_cube",
    "query_store",
    "significant_period_days",
]
