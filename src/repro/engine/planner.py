"""Query planning reports for the subcube engine (Figure 8's plan view).

``explain_plan`` describes how a :class:`SubcubeQuery` will evaluate over
a store at a given time — which cubes contribute, how many facts each
subquery touches and returns, whether the cube can answer at the
requested granularity or only coarser, and what the final combination
step does.  It performs the evaluation it describes, so the row counts
are real, and the returned plan carries the final answer for callers who
want both.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Mapping

from ..core.mo import MultidimensionalObject
from .queryproc import (
    SubcubeQuery,
    combine_subresults,
    effective_content,
    query_cube,
)
from .store import SubcubeStore


@dataclass(frozen=True)
class CubePlanStep:
    """One per-cube subquery of the evaluation plan."""

    cube: str
    granularity: tuple[str, ...]
    facts_scanned: int
    facts_returned: int
    answers_at_requested_granularity: bool
    pulled_from_parents: int

    def __str__(self) -> str:
        grain = "/".join(self.granularity)
        exactness = (
            "at requested granularity"
            if self.answers_at_requested_granularity
            else "coarser than requested"
        )
        pulled = (
            f", {self.pulled_from_parents} pulled from parents"
            if self.pulled_from_parents
            else ""
        )
        return (
            f"scan {self.cube} ({grain}): {self.facts_scanned} facts"
            f"{pulled} -> {self.facts_returned} rows ({exactness})"
        )


@dataclass(frozen=True)
class QueryPlan:
    """The full plan: per-cube steps plus the combining aggregation."""

    query: str
    at: _dt.date
    synchronized: bool
    steps: tuple[CubePlanStep, ...]
    combined_rows: int
    result: MultidimensionalObject

    def render(self) -> str:
        lines = [
            f"plan for {self.query} at {self.at} "
            f"({'synchronized' if self.synchronized else 'unsynchronized'})"
        ]
        for step in self.steps:
            lines.append(f"  {step}")
        lines.append(
            f"  combine {len(self.steps)} subresults by distributive "
            f"re-aggregation -> {self.combined_rows} rows"
        )
        return "\n".join(lines)


def explain_plan(
    store: SubcubeStore,
    query: SubcubeQuery,
    now: _dt.date,
    assume_synchronized: bool = True,
) -> QueryPlan:
    """Evaluate *query* step by step and report the plan."""
    requested = store.bottom_cube.mo.schema.validate_granularity(
        dict(query.granularity)
    )
    steps: list[CubePlanStep] = []
    subresults: list[MultidimensionalObject] = []
    for definition in store.definitions:
        cube = store.cube(definition.name)
        if assume_synchronized:
            effective = cube.mo
            pulled = 0
        else:
            effective = effective_content(store, cube, now)
            pulled = max(0, effective.n_facts - cube.n_facts)
        subresult = query_cube(effective, query, now)
        subresults.append(subresult)
        exact = _answers_exactly(subresult, requested)
        steps.append(
            CubePlanStep(
                cube=definition.name,
                granularity=definition.granularity,
                facts_scanned=effective.n_facts,
                facts_returned=subresult.n_facts,
                answers_at_requested_granularity=exact,
                pulled_from_parents=pulled,
            )
        )
    result = combine_subresults(store, subresults, query, now)
    query_text = (
        f"a[{', '.join(f'{k}.{v}' for k, v in query.granularity.items())}]"
        + (f"(o[{query.predicate}])" if query.predicate else "")
    )
    return QueryPlan(
        query=query_text,
        at=now,
        synchronized=assume_synchronized,
        steps=tuple(steps),
        combined_rows=result.n_facts,
        result=result,
    )


def _answers_exactly(
    subresult: MultidimensionalObject, requested: Mapping[str, str] | tuple
) -> bool:
    if subresult.n_facts == 0:
        return True
    requested_tuple = tuple(requested)
    return all(
        subresult.gran(fact_id) == requested_tuple
        for fact_id in subresult.facts()
    )
