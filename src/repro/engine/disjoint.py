"""Transformation of an action set into disjoint actions (Section 7.1).

For each fact at most one action is responsible for its lowest available
category (the ``<=_V``-maximal one whose predicate it satisfies).  The
transformation makes that explicit: actions are grouped by identical
target granularity, and each group's predicate is conjoined with the
negation of every *higher*-granularity group's predicate.  One residual
action at the bottom granularity collects everything no group claims —
the paper's ``a_|_'`` (Equation 44).

The resulting *disjoint* predicates partition the cell space at every
evaluation time, which is exactly what lets each subcube own its facts
exclusively and lets synchronization move data directly cube-to-cube.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.pruning import negation_prunable
from ..errors import EngineError
from ..obs.metrics import get_registry
from ..spec.action import Action
from ..spec.ast import Not, Predicate, TruePredicate, conjunction, disjunction
from ..spec.specification import ReductionSpecification

# Registered in engine/telemetry.py, catalogued in
# docs/observability.md.
from .telemetry import (  # noqa: E402
    DISJOINT_ATOMS,
    DISJOINT_BUILD_SECONDS,
    DISJOINT_NEGATIONS,
)

_HELP_NEGATIONS = (
    "Negation terms of disjoint predicates by outcome (kept or statically "
    "pruned as provably redundant)"
)
_HELP_ATOMS = "Atoms in each disjoint cube's final predicate"
_HELP_BUILD = "Seconds spent building the disjoint action set"


@dataclass(frozen=True)
class DisjointAction:
    """One disjoint action == one physical subcube definition."""

    name: str
    granularity: tuple[str, ...]
    predicate: Predicate
    #: Names of the member actions of the group ("" for the residual cube).
    members: tuple[str, ...]
    #: Names of disjoint actions at strictly lower granularity — the cubes
    #: data can migrate *from* (the parent cubes of Section 7.2).
    parents: tuple[str, ...] = field(default=())

    @property
    def is_residual(self) -> bool:
        return not self.members


def disjoint_actions(
    specification: ReductionSpecification,
    prune: bool = True,
) -> tuple[DisjointAction, ...]:
    """The disjoint action set of Section 7.1, bottom cube included.

    Cube names are ``K0`` for the residual bottom cube and ``K1..Km`` for
    the granularity groups ordered from finest to coarsest (deterministic,
    so tests and figures can reference them).

    With ``prune=True`` (the default) negation terms the semantic
    analyzer proves redundant (:func:`repro.analysis.pruning.
    negation_prunable`) are dropped; evaluation of the resulting
    predicates is bit-for-bit identical under both approaches, only
    smaller.  Term counts, predicate sizes, and build time are recorded
    in the active metrics registry.
    """
    started = time.perf_counter()
    actions = list(specification.actions)
    if not actions:
        schema = None
    else:
        schema = actions[0].schema
    if schema is None:
        raise EngineError("cannot build subcubes for an empty specification")

    groups: dict[tuple[str, ...], list[Action]] = {}
    for action in actions:
        groups.setdefault(action.cat(), []).append(action)

    def group_sort_key(granularity: tuple[str, ...]) -> tuple:
        heights = []
        for name, category in zip(schema.dimension_names, granularity):
            hierarchy = schema.dimension_type(name).hierarchy
            heights.append(len(hierarchy.descendants(category)))
        return (sum(heights), granularity)

    ordered = sorted(groups, key=group_sort_key)

    cubes: list[DisjointAction] = []
    raw_predicates: dict[tuple[str, ...], Predicate] = {
        granularity: disjunction([a.predicate for a in groups[granularity]])
        for granularity in groups
    }
    metrics = get_registry()
    dimensions = specification.dimensions
    prover = specification.prover_config
    kept_terms = 0
    pruned_terms = 0
    for index, granularity in enumerate(ordered):
        higher = [
            g
            for g in ordered
            if g != granularity
            and schema.le_granularity(granularity, g)
        ]
        negations: list[Predicate] = []
        for g in higher:
            if prune and negation_prunable(
                groups[granularity], groups[g], granularity, dimensions, prover
            ):
                pruned_terms += 1
                continue
            kept_terms += 1
            negations.append(Not(raw_predicates[g]))
        predicate = conjunction([raw_predicates[granularity], *negations])
        cubes.append(
            DisjointAction(
                name=f"K{index + 1}",
                granularity=granularity,
                predicate=predicate,
                members=tuple(a.name for a in groups[granularity]),
            )
        )

    bottom = schema.bottom_granularity()
    # Residual negations have no positive anchor to make pruning sound.
    residual_negations: list[Predicate] = [
        Not(raw_predicates[g]) for g in ordered if g != bottom
    ]
    kept_terms += len(residual_negations)
    residual_predicate = (
        conjunction(residual_negations)
        if residual_negations
        else TruePredicate()
    )
    if bottom in groups:
        # "Useless" bottom-granularity actions merge into the residual cube.
        residual_index = ordered.index(bottom)
        existing = cubes[residual_index]
        cubes[residual_index] = DisjointAction(
            name=existing.name,
            granularity=bottom,
            predicate=disjunction([existing.predicate, residual_predicate]),
            members=existing.members,
        )
    else:
        cubes.insert(
            0,
            DisjointAction(
                name="K0",
                granularity=bottom,
                predicate=residual_predicate,
                members=(),
            ),
        )

    out = tuple(_with_parents(cubes, schema))
    if kept_terms:
        metrics.counter(
            DISJOINT_NEGATIONS, {"status": "kept"}, help=_HELP_NEGATIONS
        ).inc(kept_terms)
    if pruned_terms:
        metrics.counter(
            DISJOINT_NEGATIONS, {"status": "pruned"}, help=_HELP_NEGATIONS
        ).inc(pruned_terms)
    for cube in out:
        metrics.gauge(
            DISJOINT_ATOMS, {"cube": cube.name}, help=_HELP_ATOMS
        ).set(len(list(cube.predicate.atoms())))
    metrics.histogram(
        DISJOINT_BUILD_SECONDS, help=_HELP_BUILD
    ).observe(time.perf_counter() - started)
    return out


def _with_parents(cubes: list[DisjointAction], schema) -> list[DisjointAction]:
    """Annotate each cube with its parent cubes (strictly finer ones)."""
    out: list[DisjointAction] = []
    for cube in cubes:
        parents = tuple(
            other.name
            for other in cubes
            if other.name != cube.name
            and schema.le_granularity(other.granularity, cube.granularity)
        )
        out.append(
            DisjointAction(
                name=cube.name,
                granularity=cube.granularity,
                predicate=cube.predicate,
                members=cube.members,
                parents=parents,
            )
        )
    return out
