"""Query processing over subcubes (Section 7.3).

A query runs against each subcube separately (parallelizable; here
sequential but independent), yielding subresults ``S_i`` that a final
distributive aggregation combines — the two-step evaluation Figure 8
illustrates.  In the *unsynchronized* state each subquery additionally
pulls the cube's not-yet-migrated facts from its parent cubes by applying
``a[G_i] o[P_i]`` over the cube and its parents first (Figure 9).

Because the disjoint predicates partition the cell space at every
evaluation time, the parent pull can never double-count a fact.
"""

from __future__ import annotations

import datetime as _dt
import time
import weakref
from dataclasses import dataclass
from typing import Mapping, Sequence

from .._forkreg import register_cache
from ..core.facts import Provenance, aggregate_fact_id
from ..core.mo import MultidimensionalObject
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..query.aggregation import AggregationApproach, aggregate
from ..query.compare import Approach
from ..query.selection import bind_query_predicate, select
from ..reduction.compiled import CompiledPredicate
from ..spec.ast import Predicate
from ..spec.predicate import satisfies
from .store import SubcubeStore
from .subcube import SubCube

# Query metric families (registered in engine/telemetry.py, catalogued
# in docs/observability.md).  The plan cache has two layers,
# distinguished by the ``cache`` label: ``bound`` (predicate text ->
# bound AST) and ``plan`` ((predicate, time) -> compiled verdict
# tables).  Row counters carry a ``stage`` label naming the operator:
# ``scanned`` (facts each subquery saw), ``subresult`` (rows the
# per-cube select+aggregate produced), ``result`` (rows after the final
# combination).
from .telemetry import (  # noqa: E402
    QUERY_CACHE_HITS,
    QUERY_CACHE_MISSES,
    QUERY_ROWS,
    QUERY_RUNS,
    QUERY_SECONDS,
)

_HELP_HITS = "Plan-cache hits, by cache layer."
_HELP_MISSES = "Plan-cache misses, by cache layer."

# Live plan caches, tracked weakly so forked workers can drop compiled
# plans inherited from the parent (see repro.parallel.forksafe).
_CACHES: "weakref.WeakSet[QueryPlanCache]" = weakref.WeakSet()


def clear_plan_caches() -> None:
    """Clear every live :class:`QueryPlanCache`.

    Compiled plans key on ``id(predicate)``; after a fork those ids refer
    to parent-heap objects the child also inherited, so the entries are
    *valid* but pin memory the worker will never reuse.  Workers clear
    them and rebuild on demand.
    """
    for cache in list(_CACHES):
        cache.clear()


def _plan_cache_entries() -> int:
    return sum(
        cache.n_bound + cache.n_plans for cache in list(_CACHES)
    )


register_cache(
    "repro.engine.queryproc:plans", clear_plan_caches, _plan_cache_entries
)


@dataclass(frozen=True)
class SubcubeQuery:
    """The canonical OLAP query ``a[granularity](o[predicate](O))``."""

    predicate: str | None
    granularity: Mapping[str, str]
    approach: Approach = Approach.CONSERVATIVE
    aggregation: AggregationApproach = AggregationApproach.AVAILABILITY


class QueryPlanCache:
    """Compiled query plans, shared across one store's subqueries.

    Each predicate *text* is parsed and schema-bound once per store, and
    each (bound predicate, evaluation time) pair is compiled once into a
    :class:`CompiledPredicate` whose per-value verdict tables are then
    reused by every subquery — a query over ``n`` cubes pays for each
    distinct direct value once, not once per cube.  Cached plans hold
    strong references to their predicates, so the ``id``-based keys can
    never alias a recycled object.
    """

    def __init__(self, store: SubcubeStore) -> None:
        self._store = store
        self._bound: dict[str, Predicate] = {}
        self._plans: dict[tuple[int, _dt.date], CompiledPredicate] = {}
        _CACHES.add(self)

    def clear(self) -> None:
        """Drop every cached binding and plan (the store stays attached)."""
        self._bound.clear()
        self._plans.clear()

    @property
    def n_bound(self) -> int:
        return len(self._bound)

    @property
    def n_plans(self) -> int:
        return len(self._plans)

    def bound_predicate(self, text: str) -> Predicate:
        """The schema-bound AST of *text*, parsed at most once."""
        metrics = self._store.metrics
        bound = self._bound.get(text)
        if bound is None:
            metrics.counter(
                QUERY_CACHE_MISSES, {"cache": "bound"}, help=_HELP_MISSES
            ).inc()
            bound = bind_query_predicate(self._store.bottom_cube.mo, text)
            self._bound[text] = bound
        else:
            metrics.counter(
                QUERY_CACHE_HITS, {"cache": "bound"}, help=_HELP_HITS
            ).inc()
        return bound

    def plan_for(
        self, predicate: Predicate, now: _dt.date
    ) -> CompiledPredicate:
        """The compiled plan of a bound predicate at *now*."""
        metrics = self._store.metrics
        key = (id(predicate), now)
        plan = self._plans.get(key)
        if plan is None:
            metrics.counter(
                QUERY_CACHE_MISSES, {"cache": "plan"}, help=_HELP_MISSES
            ).inc()
            plan = CompiledPredicate(
                predicate, self._store.bottom_cube.mo.dimensions, now
            )
            self._plans[key] = plan
        else:
            metrics.counter(
                QUERY_CACHE_HITS, {"cache": "plan"}, help=_HELP_HITS
            ).inc()
        return plan

    def plan_for_text(self, text: str, now: _dt.date) -> CompiledPredicate:
        return self.plan_for(self.bound_predicate(text), now)

    def note_sync(self, moved: Mapping[str, int], now: _dt.date) -> None:
        """Scoped invalidation after a committed synchronization.

        Bound predicates (text -> schema-bound AST) depend only on the
        schema and dimension values, which synchronization never touches
        — they are *always* kept warm, so snapshot readers and repeated
        queries keep their parsed plans across NOW advances.  Compiled
        verdict tables are keyed by ``(predicate, time)`` and stay
        correct too; what a sync changes is which evaluation times are
        still *reachable*: once facts actually migrated at *now*, plans
        compiled for earlier times belong to store versions no live
        query will combine with this store again, so they are released
        (otherwise a long NOW trajectory grows the cache without bound).
        A synchronization that migrated nothing releases nothing.
        """
        if not any(moved.values()):
            return
        stale = [key for key in self._plans if key[1] < now]
        for key in stale:
            del self._plans[key]


def plan_cache(store: SubcubeStore) -> QueryPlanCache:
    """The store's plan cache (created and attached on first use)."""
    cache = getattr(store, "_plan_cache", None)
    if cache is None or cache._store is not store:
        cache = QueryPlanCache(store)
        store._plan_cache = cache
    return cache


def _plan_select(
    mo: MultidimensionalObject,
    plan: CompiledPredicate,
    approach: Approach,
) -> MultidimensionalObject:
    """``select`` via a compiled plan (same keep-list, same order)."""
    direct_value = mo.direct_value
    keep = [
        fact_id
        for fact_id in mo.facts()
        if plan.satisfied_by(
            lambda name, _f=fact_id: direct_value(_f, name), approach
        )
    ]
    return mo.restrict_to_facts(keep)


def query_cube(
    cube_mo: MultidimensionalObject,
    query: SubcubeQuery,
    now: _dt.date,
    plans: QueryPlanCache | None = None,
) -> MultidimensionalObject:
    """One subquery ``S_i = Q(K_i)``."""
    current = cube_mo
    if query.predicate is not None:
        if plans is not None and isinstance(query.predicate, str):
            plan = plans.plan_for_text(query.predicate, now)
            current = _plan_select(current, plan, query.approach)
        else:
            current = select(current, query.predicate, now, query.approach)
    return aggregate(current, query.granularity, query.aggregation)


def query_store(
    store: SubcubeStore,
    query: SubcubeQuery,
    now: _dt.date,
    assume_synchronized: bool = True,
    plans: QueryPlanCache | None = None,
) -> MultidimensionalObject:
    """Evaluate *query* over all subcubes and combine the subresults.

    With ``assume_synchronized=False`` each cube's effective content is
    first rebuilt as ``a[G_i](o[P_i](K_i union parents(K_i)))`` at the
    current time, so queries stay correct between synchronizations.

    The store's :func:`plan_cache` is used by default, so the query
    predicate is parsed once per store and its verdict tables are shared
    across the per-cube subqueries (and across repeated queries).
    """
    if plans is None:
        plans = plan_cache(store)
    started = time.perf_counter()
    with trace.span(
        "query.store", synchronized=assume_synchronized
    ) as query_span:
        scanned = 0
        subresults: list[MultidimensionalObject] = []
        for definition in store.definitions:
            cube = store.cube(definition.name)
            if assume_synchronized:
                effective = cube.mo
            else:
                effective = effective_content(store, cube, now, plans)
            scanned += effective.n_facts
            subresults.append(query_cube(effective, query, now, plans))
        result = combine_subresults(store, subresults, query, now)
        query_span.set_attribute("rows_scanned", scanned)
        query_span.set_attribute("rows_result", result.n_facts)
    metrics = store.metrics
    metrics.counter(
        QUERY_RUNS, help="Queries evaluated over the subcube store."
    ).inc()
    rows_help = "Rows seen per query operator stage."
    metrics.counter(QUERY_ROWS, {"stage": "scanned"}, help=rows_help).inc(
        scanned
    )
    metrics.counter(QUERY_ROWS, {"stage": "subresult"}, help=rows_help).inc(
        sum(subresult.n_facts for subresult in subresults)
    )
    metrics.counter(QUERY_ROWS, {"stage": "result"}, help=rows_help).inc(
        result.n_facts
    )
    metrics.histogram(
        QUERY_SECONDS,
        buckets=obs_metrics.TIME_BUCKETS,
        help="Store query duration in seconds.",
    ).observe(time.perf_counter() - started)
    return result


def effective_content(
    store: SubcubeStore,
    cube: SubCube,
    now: _dt.date,
    plans: QueryPlanCache | None = None,
) -> MultidimensionalObject:
    """``a[G_i](o[P_i](K_i union parents))`` — Figure 9's repair step.

    Facts of the cube and of every parent cube that satisfy the cube's
    disjoint predicate *now* are collected and rolled up to the cube's
    granularity.  Disjointness guarantees each fact is claimed by exactly
    one cube, so the union over cubes never double-counts.
    """
    definition = cube.definition
    template = cube.mo.empty_like()
    # The disjoint predicate was assembled from already-bound action
    # predicates, so it can be evaluated directly; all its atoms reference
    # categories at or above the granularities of the facts involved, so
    # evaluation is exact (conservative == liberal).
    predicate = definition.predicate
    plan = plans.plan_for(predicate, now) if plans is not None else None
    sources: list[MultidimensionalObject] = [cube.mo]
    for parent_name in definition.parents:
        sources.append(store.cube(parent_name).mo)
    names = template.schema.dimension_names
    for source in sources:
        direct_value = source.direct_value
        for fact_id in source.facts():
            if plan is not None:
                admitted = plan.satisfied_by(
                    lambda name, _f=fact_id: direct_value(_f, name)
                )
            else:
                admitted = satisfies(source, fact_id, predicate, now)
            if not admitted:
                continue
            coordinates: dict[str, str] = {}
            ok = True
            for name, category in zip(names, definition.granularity):
                value = source.dimensions[name].try_ancestor_at(
                    source.direct_value(fact_id, name), category
                )
                if value is None:
                    ok = False
                    break
                coordinates[name] = value
            if not ok:
                continue
            _merge_fact(
                template,
                coordinates,
                {
                    name: source.measure_value(fact_id, name)
                    for name in source.schema.measure_names
                },
                source.provenance(fact_id),
            )
    return template


def combine_subresults(
    store: SubcubeStore,
    subresults: Sequence[MultidimensionalObject],
    query: SubcubeQuery,
    now: _dt.date,
) -> MultidimensionalObject:
    """The final combination step: union the ``S_i`` and aggregate once.

    All warehouse aggregates are distributive (the model requires it), so
    aggregating the subresults again "poses no complications", exactly as
    Section 7.3 argues.
    """
    union = store.bottom_cube.mo.empty_like()
    names = union.schema.dimension_names
    for subresult in subresults:
        for fact_id in subresult.facts():
            coordinates = {
                name: subresult.direct_value(fact_id, name) for name in names
            }
            _merge_fact(
                union,
                coordinates,
                {
                    name: subresult.measure_value(fact_id, name)
                    for name in subresult.schema.measure_names
                },
                subresult.provenance(fact_id),
            )
    return aggregate(union, dict(query.granularity), query.aggregation)


def _merge_fact(
    mo: MultidimensionalObject,
    coordinates: Mapping[str, str],
    measures: Mapping[str, object],
    provenance: Provenance,
) -> None:
    cell = tuple(
        mo.dimensions[name].normalize_value(coordinates[name])
        for name in mo.schema.dimension_names
    )
    fact_id = aggregate_fact_id(cell)
    if fact_id in mo:
        merged = {
            name: mo.measures[name].aggregate(
                [mo.measure_value(fact_id, name), measures[name]]
            )
            for name in mo.schema.measure_names
        }
        existing = mo.provenance(fact_id)
        mo.delete_fact(fact_id)
        mo.insert_aggregate_fact(
            fact_id,
            dict(zip(mo.schema.dimension_names, cell)),
            merged,
            existing.merge(provenance),
        )
    else:
        mo.insert_aggregate_fact(
            fact_id,
            dict(zip(mo.schema.dimension_names, cell)),
            dict(measures),
            provenance,
        )
