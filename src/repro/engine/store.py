"""The subcube store: Figure 6's architecture.

New data enters the bottom-granularity cube; synchronization migrates
facts between cubes as ``NOW`` advances (Section 7.2); queries run against
all cubes and combine (Section 7.3, in :mod:`repro.engine.queryproc`).

Fact-to-cube assignment uses the responsibility semantics directly: a
fact belongs to the granularity group that is ``<=_V``-maximal among the
actions whose (raw) predicate its cell satisfies — the same ``Cell``
machinery as the monolithic reducer, which is what makes the store
provably equivalent to ``reduce_mo`` (property-tested).
"""

from __future__ import annotations

import datetime as _dt
import time
import types
import warnings
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..core.dimension import ALL_VALUE
from ..core.facts import Provenance
from ..core.hierarchy import TOP
from ..core.mo import MultidimensionalObject
from ..errors import AuditError, EngineError, ReproError
from ..obs import metrics as obs_metrics
from ..obs import trace
from ..spec.predicate import cell_satisfies
from ..spec.ranges import GRANULE_DAYS
from ..spec.specification import ReductionSpecification
from ..timedim.calendar import first_day, last_day
from ..timedim.now import NowRelative
from .disjoint import DisjointAction, disjoint_actions
from .subcube import SubCube

#: Day-ordinal intervals per dimension within which admission verdicts may
#: have changed between two synchronization times; ``None`` = everywhere.
SuspectRegions = "dict[str, list[tuple[float, float]]] | None"

# Metric families the store reports into its per-instance registry
# (registered in engine/telemetry.py, catalogued in
# docs/observability.md).
from .telemetry import (  # noqa: E402
    STORE_LOADED,
    STORE_REBUILDS,
    SYNC_EXAMINED,
    SYNC_LAST_EXAMINED,
    SYNC_LAST_MIGRATED,
    SYNC_LAST_SKIPPED,
    SYNC_MIGRATED,
    SYNC_RUNS,
    SYNC_SECONDS,
    SYNC_SKIPPED,
    SYNC_UNDO_LOG,
)

_HELP_LAST_EXAMINED = "Facts the most recent synchronize() examined."


@dataclass(frozen=True)
class Migration:
    """One fact's planned move between subcubes during synchronization.

    ``coordinates``/``measures``/``provenance`` describe the fact *as it
    leaves the source cube* (already rolled up to the target
    granularity); applying the move is ``source.remove(fact_id)``
    followed by ``target.insert_at_granularity(...)``.  The durable
    engine journals exactly this payload, so a committed synchronization
    can be replayed physically, bit for bit.
    """

    fact_id: str
    source: str
    target: str
    coordinates: Mapping[str, str]
    measures: Mapping[str, object]
    provenance: Provenance


@dataclass
class AuditReport:
    """Outcome of a :meth:`SubcubeStore.verify` invariant audit."""

    violations: list[str] = field(default_factory=list)
    facts: int = 0
    sources: int = 0
    checked_measures: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        if self.violations:
            raise AuditError(self.violations)

    def as_dict(self) -> dict[str, object]:
        return {
            "ok": self.ok,
            "facts": self.facts,
            "sources": self.sources,
            "checked_measures": self.checked_measures,
            "violations": list(self.violations),
        }


class _UndoLog:
    """First-touch-wins before-images of cube facts, for rollback.

    Every mutation the store performs during a transactional operation
    records the prior state of the (cube, fact id) pair it is about to
    touch — whether the fact existed, and with which coordinates,
    measures, and provenance.  Rolling back replays those before-images
    in any order (first-touch-wins makes later touches of the same pair
    no-ops), restoring the store to the state before the operation.
    """

    def __init__(self) -> None:
        self._before: dict[tuple[str, str], tuple | None] = {}
        self.dirty_added: set[str] = set()

    def __len__(self) -> int:
        return len(self._before)

    def record(self, cube: SubCube, fact_id: str) -> None:
        key = (cube.name, fact_id)
        if key in self._before:
            return
        mo = cube.mo
        if fact_id in mo:
            self._before[key] = (
                dict(
                    zip(mo.schema.dimension_names, mo.direct_cell(fact_id))
                ),
                {
                    name: mo.measure_value(fact_id, name)
                    for name in mo.schema.measure_names
                },
                mo.provenance(fact_id),
            )
        else:
            self._before[key] = None

    def rollback(self, store: "SubcubeStore") -> None:
        for (cube_name, fact_id), before in self._before.items():
            mo = store.cube(cube_name).mo
            if fact_id in mo:
                mo.delete_fact(fact_id)
            if before is not None:
                coordinates, measures, provenance = before
                mo.insert_aggregate_fact(
                    fact_id, coordinates, measures, provenance
                )
        store._dirty -= self.dirty_added
        self._before.clear()
        self.dirty_added.clear()


class SubcubeStore:
    """A warehouse physically organized as disjoint subcubes."""

    #: Set (per instance) by the mutation sanitizer when this store is a
    #: published snapshot; attribute writes and the load/synchronize/
    #: rebuild entry points then raise (see :mod:`repro.sanitize`).
    _sealed = False

    def __setattr__(self, name: str, value: object) -> None:
        if self._sealed:
            from ..sanitize import check_unsealed

            check_unsealed(self, f"assignment of {name!r}")
        super().__setattr__(name, value)

    def _check_writable(self, action: str) -> None:
        if self._sealed:
            from ..sanitize import check_unsealed

            check_unsealed(self, action)

    def __init__(
        self,
        template: MultidimensionalObject,
        specification: ReductionSpecification,
        metrics: obs_metrics.MetricsRegistry | None = None,
    ) -> None:
        self._template = template.empty_like()
        self._specification = specification
        self._definitions = disjoint_actions(specification)
        self._cubes: dict[str, SubCube] = {
            definition.name: SubCube(definition, self._template)
            for definition in self._definitions
        }
        self._bottom_name = self._bottom_cube_name()
        self.last_sync: _dt.date | None = None
        #: Facts loaded since the last synchronization (they must be
        #: examined regardless of the suspect-region analysis).
        self._dirty: set[str] = set()
        #: The store's private metrics registry: gauges like
        #: ``repro_sync_last_examined`` are per-store state, so two stores
        #: must never write to the same family.  Pass a registry to pool
        #: several stores (or the CLI's run registry) explicitly.
        self.metrics = (
            metrics if metrics is not None else obs_metrics.MetricsRegistry()
        )
        self.metrics.gauge(
            SYNC_LAST_EXAMINED, help=_HELP_LAST_EXAMINED
        ).set(0)

    @property
    def last_sync_examined(self) -> int:
        """Deprecated alias for the ``repro_sync_last_examined`` gauge.

        The attribute predates the metrics registry; read
        ``store.metrics.value(SYNC_LAST_EXAMINED)`` instead.
        """
        warnings.warn(
            "SubcubeStore.last_sync_examined is deprecated; read the "
            "repro_sync_last_examined gauge from store.metrics instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return int(self.metrics.value(SYNC_LAST_EXAMINED) or 0)

    @last_sync_examined.setter
    def last_sync_examined(self, value: int) -> None:
        warnings.warn(
            "SubcubeStore.last_sync_examined is deprecated; write the "
            "repro_sync_last_examined gauge on store.metrics instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.metrics.gauge(
            SYNC_LAST_EXAMINED, help=_HELP_LAST_EXAMINED
        ).set(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def specification(self) -> ReductionSpecification:
        return self._specification

    @property
    def definitions(self) -> tuple[DisjointAction, ...]:
        return self._definitions

    @property
    def cubes(self) -> Mapping[str, SubCube]:
        """A read-only live view of the subcubes (no per-access copy)."""
        return types.MappingProxyType(self._cubes)

    def cube(self, name: str) -> SubCube:
        try:
            return self._cubes[name]
        except KeyError:
            raise EngineError(f"no subcube named {name!r}") from None

    @property
    def bottom_cube(self) -> SubCube:
        return self._cubes[self._bottom_name]

    def total_facts(self) -> int:
        return sum(cube.n_facts for cube in self._cubes.values())

    def _bottom_cube_name(self) -> str:
        bottom = self._template.schema.bottom_granularity()
        for definition in self._definitions:
            if definition.granularity == bottom:
                return definition.name
        raise EngineError("disjoint transformation produced no bottom cube")

    # ------------------------------------------------------------------
    # Loading and synchronization (Section 7.2)
    # ------------------------------------------------------------------

    def load(
        self,
        facts: Iterable[tuple[str, Mapping[str, str], Mapping[str, object]]],
    ) -> int:
        """Bulk-load user facts into the bottom cube (always the entry
        point, per Section 7.2).

        The load is all-or-nothing: if any fact fails to insert (unknown
        value, missing measure, ...), every fact staged before it is
        rolled back and ``_dirty`` is left exactly as it was — a partial
        batch is never observable.
        """
        self._check_writable("load")
        staged = [
            (fact_id, dict(coordinates), dict(measures))
            for fact_id, coordinates, measures in facts
        ]
        self._journal_load(staged)
        bottom = self.bottom_cube
        undo = _UndoLog()
        with trace.span("store.load", facts=len(staged)):
            try:
                for index, (fact_id, coordinates, measures) in enumerate(
                    staged
                ):
                    self._load_fault(index, fact_id)
                    cell_id = bottom.cell_fact_id(coordinates)
                    undo.record(bottom, cell_id)
                    stored_id = bottom.insert_at_granularity(
                        coordinates, measures, Provenance.of(fact_id)
                    )
                    if stored_id not in self._dirty:
                        undo.dirty_added.add(stored_id)
                    self._dirty.add(stored_id)
            except BaseException as exc:
                undo.rollback(self)
                self._journal_load_failed(exc)
                raise
        self.metrics.counter(
            STORE_LOADED, help="Facts bulk-loaded into the bottom cube."
        ).inc(len(staged))
        return len(staged)

    def synchronize(
        self,
        now: _dt.date,
        *,
        incremental: bool = True,
        executor: "object | None" = None,
    ) -> dict[str, int]:
        """Migrate facts so every cube holds exactly its cells at *now*.

        Returns per-cube migration counts (facts moved *into* each cube).
        Synchronization is idempotent at a fixed time and monotone for
        Growing specifications: facts only ever move from finer cubes to
        coarser ones.

        With ``incremental=True`` (the default) and a previous sync time on
        record, only *suspect* facts are examined: facts loaded since the
        last sync, plus facts whose time-dimension extent intersects a
        region where some NOW-relative atom's boundary lay at the old or
        new time.  A fact outside every such region satisfies exactly the
        same atoms at both times, so its target cube cannot have changed —
        skipping it is sound, and the incremental path is bit-for-bit
        equivalent to a full rescan (property-tested).  The number of facts
        actually examined is exposed as the ``repro_sync_last_examined``
        gauge on :attr:`metrics`.

        With an *executor* (a :class:`repro.parallel.ShardExecutor`),
        fact classification fans out over worker shards and the result
        is bit-for-bit the serial one — see
        :func:`repro.parallel.sync.synchronize_sharded`.
        """
        self._check_writable("synchronize")
        if executor is not None:
            from ..parallel.sync import synchronize_sharded

            return synchronize_sharded(
                self, now, executor=executor, incremental=incremental
            )
        if self.last_sync is not None and now < self.last_sync:
            raise EngineError(
                f"synchronization time moved backwards ({self.last_sync} -> {now})"
            )
        regions = None
        if incremental and self.last_sync is not None:
            regions = self._suspect_regions(self.last_sync, now)
        # "incremental" means the suspect-region analysis actually bounded
        # the work; a first sync or an unbounded analysis is a full rescan.
        mode = "incremental" if regions is not None else "full"
        self._journal_sync_begin(now, incremental)
        moved: dict[str, int] = {name: 0 for name in self._cubes}
        examined = 0
        skipped = 0
        dimensions = self._template.dimensions
        names = self._template.schema.dimension_names
        span_cache: dict[tuple[str, str], tuple[float, float] | None] = {}
        # Facts this run already placed: their target was just computed at
        # *now*, so re-examining them in a later-iterated cube is wasted
        # work (and would double-count the examined metric).
        settled: set[str] = set()
        undo = _UndoLog()
        started = time.perf_counter()
        with trace.span("sync.run", mode=mode) as sync_span:
            try:
                for cube in self._cubes.values():
                    mo = cube.mo
                    for fact_id in list(mo.facts()):
                        if fact_id in settled:
                            continue
                        if (
                            regions is not None
                            and fact_id not in self._dirty
                            and not self._needs_examination(
                                mo, fact_id, regions, span_cache
                            )
                        ):
                            skipped += 1
                            continue
                        examined += 1
                        cell = dict(zip(names, mo.direct_cell(fact_id)))
                        target = self._target_cube(cell, now)
                        if target.name == cube.name:
                            continue
                        coordinates = {
                            name: _rollup(
                                dimensions[name], cell[name], category
                            )
                            for name, category in zip(
                                names, target.granularity
                            )
                        }
                        measures = {
                            measure: mo.measure_value(fact_id, measure)
                            for measure in mo.schema.measure_names
                        }
                        provenance = mo.provenance(fact_id)
                        settled.add(
                            self._apply_migration(
                                Migration(
                                    fact_id,
                                    cube.name,
                                    target.name,
                                    coordinates,
                                    measures,
                                    provenance,
                                ),
                                undo,
                            )
                        )
                        moved[target.name] += 1
                self._journal_sync_commit(now, moved, examined)
            except BaseException as exc:
                # Roll every staged migration back: the store is never
                # observably half-migrated, and a retry starts from the
                # exact pre-synchronization state (``last_sync``/``_dirty``
                # are only touched after the commit point below).
                undo.rollback(self)
                self._journal_sync_failed(exc)
                raise
            self.last_sync = now
            self._dirty.clear()
            self._invalidate_query_plans(moved, now)
            sync_span.set_attribute("examined", examined)
            sync_span.set_attribute("migrated", sum(moved.values()))
            sync_span.set_attribute("skipped", skipped)
        self._record_sync(
            mode,
            examined,
            sum(moved.values()),
            skipped,
            len(undo),
            time.perf_counter() - started,
        )
        return moved

    def _record_sync(
        self,
        mode: str,
        examined: int,
        migrated: int,
        skipped: int,
        undo_size: int,
        seconds: float,
    ) -> None:
        """Record one committed synchronization (never a rolled-back one,
        so the counters describe only observable state transitions)."""
        metrics = self.metrics
        metrics.counter(
            SYNC_RUNS,
            {"mode": mode},
            help="Committed synchronizations, by scan mode.",
        ).inc()
        metrics.counter(
            SYNC_EXAMINED, help="Facts examined across synchronizations."
        ).inc(examined)
        metrics.counter(
            SYNC_MIGRATED, help="Facts migrated across synchronizations."
        ).inc(migrated)
        metrics.counter(
            SYNC_SKIPPED,
            help="Facts skipped by the suspect-region analysis.",
        ).inc(skipped)
        metrics.gauge(SYNC_LAST_EXAMINED, help=_HELP_LAST_EXAMINED).set(
            examined
        )
        metrics.gauge(
            SYNC_LAST_MIGRATED,
            help="Facts the most recent synchronize() migrated.",
        ).set(migrated)
        metrics.gauge(
            SYNC_LAST_SKIPPED,
            help="Facts the most recent synchronize() skipped.",
        ).set(skipped)
        metrics.gauge(
            SYNC_UNDO_LOG,
            help="Before-images held by the most recent sync's undo log.",
        ).set(undo_size)
        metrics.histogram(
            SYNC_SECONDS,
            {"mode": mode},
            buckets=obs_metrics.TIME_BUCKETS,
            help="Synchronization duration in seconds, by scan mode.",
        ).observe(seconds)

    def _invalidate_query_plans(
        self, moved: Mapping[str, int], now: _dt.date
    ) -> None:
        """Release attached query-plan state a committed sync made stale.

        Scoped, not wholesale: bound predicate ASTs survive every
        synchronization (they depend only on schema and dimensions), and
        compiled verdict tables are only released for evaluation times
        before *now*, and only when some cube actually received migrated
        facts — see :meth:`QueryPlanCache.note_sync`.  A store with no
        attached cache is untouched.
        """
        cache = getattr(self, "_plan_cache", None)
        if cache is not None:
            cache.note_sync(moved, now)

    def _apply_migration(self, migration: Migration, undo: _UndoLog) -> str:
        """Journal (via hook), undo-record, and apply one migration."""
        self._journal_migrate(migration)
        source = self._cubes[migration.source]
        target = self._cubes[migration.target]
        undo.record(source, migration.fact_id)
        undo.record(target, target.cell_fact_id(migration.coordinates))
        source.remove(migration.fact_id)
        return target.insert_at_granularity(
            migration.coordinates, migration.measures, migration.provenance
        )

    def _suspect_regions(self, old: _dt.date, new: _dt.date):
        """Per-dimension day intervals where verdicts may have flipped.

        For every NOW-relative term of every atom, the hull of the granule
        the term denoted at *old* and the granule it denotes at *new*: an
        atom's verdict for a value can only change when the value's day
        extent meets that hull (order atoms flip exactly for values between
        the two boundaries; equality/membership atoms flip exactly for
        values overlapping either denoted granule).  ``None`` means the
        analysis cannot bound the change (a NOW term at an unmodelled
        category) and a full rescan is required.
        """
        regions: dict[str, list[tuple[float, float]]] = {}
        for action in self._specification.actions:
            for atoms in action.conjuncts():
                for atom in atoms:
                    now_terms = [
                        term
                        for term in atom.terms
                        if isinstance(term, NowRelative)
                    ]
                    if not now_terms:
                        continue
                    category = atom.ref.category
                    if category == TOP or category not in GRANULE_DAYS:
                        return None
                    for term in now_terms:
                        try:
                            old_value = term.evaluate(old, category)
                            new_value = term.evaluate(new, category)
                            lo = min(
                                first_day(category, old_value).toordinal(),
                                first_day(category, new_value).toordinal(),
                            )
                            hi = max(
                                last_day(category, old_value).toordinal(),
                                last_day(category, new_value).toordinal(),
                            )
                        except ReproError:
                            return None
                        regions.setdefault(atom.ref.dimension, []).append(
                            (float(lo), float(hi))
                        )
        return regions

    def _needs_examination(
        self,
        mo: MultidimensionalObject,
        fact_id: str,
        regions: Mapping[str, list[tuple[float, float]]],
        span_cache: dict[tuple[str, str], tuple[float, float] | None],
    ) -> bool:
        """Whether a fact's values meet any suspect region.

        Values whose day extent cannot be bounded (the top value, TOP
        category, or non-calendar values) are always examined — a sound
        fallback, never an unsound skip.
        """
        dimensions = self._template.dimensions
        for name, intervals in regions.items():
            value = mo.direct_value(fact_id, name)
            key = (name, value)
            if key in span_cache:
                span = span_cache[key]
            else:
                span = _value_day_span(dimensions[name], value)
                span_cache[key] = span
            if span is None:
                return True
            lo, hi = span
            for region_lo, region_hi in intervals:
                if lo <= region_hi and region_lo <= hi:
                    return True
        return False

    def _target_cube(self, cell: Mapping[str, str], now: _dt.date) -> SubCube:
        """The cube responsible for a cell at *now*: the ``<=_V``-maximal
        granularity among satisfied actions, else the bottom cube."""
        schema = self._template.schema
        dimensions = self._template.dimensions
        best: tuple[str, ...] | None = None
        for action in self._specification.actions:
            if not cell_satisfies(dimensions, cell, action.predicate, now):
                continue
            if best is None or schema.le_granularity(best, action.cat()):
                best = action.cat()
            elif not schema.le_granularity(action.cat(), best):
                raise EngineError(
                    f"cell {dict(cell)!r} is claimed by incomparable "
                    f"granularities {best!r} and {action.cat()!r}; the "
                    "specification is crossing"
                )
        if best is None:
            return self.bottom_cube
        for definition in self._definitions:
            if definition.granularity == best and not definition.is_residual:
                return self._cubes[definition.name]
        # A "useless" bottom-granularity action group merged into K0.
        return self.bottom_cube

    # ------------------------------------------------------------------
    # Specification changes (the infrequent synchronization case)
    # ------------------------------------------------------------------

    def rebuild(
        self, specification: ReductionSpecification, now: _dt.date
    ) -> None:
        """Re-derive the disjoint set after a specification change.

        New cubes are created, all facts re-assigned (from *all* old
        cubes, as Section 7.2 prescribes), and cubes that no longer exist
        are dropped once empty.

        The rebuild is staged: the new cube set is fully populated off to
        the side and only swapped in once every fact has been re-assigned,
        so a mid-rebuild failure (e.g. the irreversibility check) leaves
        the store exactly as it was.
        """
        self._check_writable("rebuild")
        old_state = (
            self._specification,
            self._definitions,
            self._cubes,
            self._bottom_name,
        )
        self._specification = specification
        self._definitions = disjoint_actions(specification)
        new_cubes = {
            definition.name: SubCube(definition, self._template)
            for definition in self._definitions
        }
        old_cubes, self._cubes = self._cubes, new_cubes
        try:
            self._bottom_name = self._bottom_cube_name()
            names = self._template.schema.dimension_names
            dimensions = self._template.dimensions
            for cube in old_cubes.values():
                mo = cube.mo
                for fact_id in mo.facts():
                    cell = dict(zip(names, mo.direct_cell(fact_id)))
                    target = self._target_cube(cell, now)
                    if not self._template.schema.le_granularity(
                        tuple(
                            dimensions[name].category_of(cell[name])
                            for name in names
                        ),
                        target.granularity,
                    ):
                        raise EngineError(
                            f"rebuild would disaggregate fact {fact_id!r}; "
                            "the new specification violates irreversibility"
                        )
                    coordinates = {
                        name: _rollup(dimensions[name], cell[name], category)
                        for name, category in zip(names, target.granularity)
                    }
                    measures = {
                        measure: mo.measure_value(fact_id, measure)
                        for measure in mo.schema.measure_names
                    }
                    target.insert_at_granularity(
                        coordinates, measures, mo.provenance(fact_id)
                    )
        except BaseException:
            (
                self._specification,
                self._definitions,
                self._cubes,
                self._bottom_name,
            ) = old_state
            raise
        self.last_sync = now
        self._dirty.clear()
        # A rebuild replaces the cube set wholesale, so unlike a sync the
        # attached plan cache is cleared completely (bound ASTs included:
        # the new specification may bind the same text differently).
        cache = getattr(self, "_plan_cache", None)
        if cache is not None:
            cache.clear()
        self._journal_rebuild(now)
        self.metrics.counter(
            STORE_REBUILDS,
            help="Specification rebuilds applied to the store.",
        ).inc()

    # ------------------------------------------------------------------
    # Durability hooks (no-ops here; the durable engine overrides them)
    # ------------------------------------------------------------------

    def _journal_load(
        self,
        staged: list[tuple[str, dict[str, str], dict[str, object]]],
    ) -> None:
        """Called with the full staged batch before any insert happens."""

    def _load_fault(self, index: int, fact_id: str) -> None:
        """Called before each staged insert (fault-injection hook)."""

    def _journal_load_failed(self, exc: BaseException) -> None:
        """Called after a failed load has been rolled back."""

    def _journal_sync_begin(self, now: _dt.date, incremental: bool) -> None:
        """Called once per synchronization, before any fact moves."""

    def _journal_migrate(self, migration: Migration) -> None:
        """Called before each migration is applied to the cubes."""

    def _journal_sync_commit(
        self, now: _dt.date, moved: Mapping[str, int], examined: int
    ) -> None:
        """The synchronization commit point (after the last migration)."""

    def _journal_sync_failed(self, exc: BaseException) -> None:
        """Called after a failed synchronization has been rolled back."""

    def _journal_sync_begin_sharded(
        self, now: _dt.date, incremental: bool
    ) -> int | None:
        """Called once per sharded synchronization, before any worker
        runs; returns the begin record's LSN (``None`` = not durable)."""
        return None

    def _journal_sync_commit_sharded(
        self,
        now: _dt.date,
        moved: Mapping[str, int],
        examined: int,
        segments: list[tuple[str, int]],
    ) -> None:
        """The sharded commit point, naming every worker segment."""

    def _journal_sync_failed_sharded(
        self, exc: BaseException, segments: list[tuple[str, int]]
    ) -> None:
        """Called after a failed sharded sync has been rolled back."""

    def _journal_rebuild(self, now: _dt.date) -> None:
        """Called after a successful specification rebuild."""

    # ------------------------------------------------------------------
    # Invariant audit
    # ------------------------------------------------------------------

    def verify(
        self,
        sources: Mapping[str, Mapping[str, object]] | None = None,
        *,
        strict: bool = False,
    ) -> AuditReport:
        """Audit the store's structural invariants.

        Always checked:

        * every fact sits in exactly one cube, at that cube's granularity;
        * every fact carries non-empty provenance;
        * no source fact is claimed by two resident facts (provenance
          partitions the loaded history).

        With *sources* (source fact id -> its measure values, as the
        durable engine reconstructs from the journal), conservation is
        also checked: the union of all provenances equals the loaded
        source set, and every resident fact's measure values equal the
        default aggregate over its members' source values — measure-sum
        conservation per reduction action, in the paper's terms.

        Returns an :class:`AuditReport`; with ``strict=True`` a failing
        audit raises :class:`~repro.errors.AuditError` instead.
        """
        report = AuditReport()
        seen_members: dict[str, str] = {}
        names = self._template.schema.dimension_names
        for cube in self._cubes.values():
            mo = cube.mo
            for fact_id in mo.facts():
                report.facts += 1
                granularity = mo.gran(fact_id)
                if granularity != cube.granularity:
                    report.violations.append(
                        f"{cube.name}: fact {fact_id!r} is at granularity "
                        f"{granularity!r}, cube holds {cube.granularity!r}"
                    )
                provenance = mo.provenance(fact_id)
                if not provenance.members:
                    report.violations.append(
                        f"{cube.name}: fact {fact_id!r} has empty provenance"
                    )
                for member in provenance.members:
                    owner = seen_members.setdefault(member, fact_id)
                    if owner != fact_id:
                        report.violations.append(
                            f"source fact {member!r} is claimed by both "
                            f"{owner!r} and {fact_id!r}"
                        )
                if sources is not None:
                    self._verify_measures(
                        report, cube, fact_id, provenance, sources
                    )
        report.sources = len(seen_members)
        if sources is not None:
            loaded = set(sources)
            resident = set(seen_members)
            for lost in sorted(loaded - resident):
                report.violations.append(
                    f"source fact {lost!r} was loaded but is in no "
                    "resident fact's provenance"
                )
            for invented in sorted(resident - loaded):
                report.violations.append(
                    f"provenance member {invented!r} was never loaded"
                )
        if strict:
            report.raise_if_failed()
        return report

    def _verify_measures(
        self,
        report: AuditReport,
        cube: SubCube,
        fact_id: str,
        provenance: Provenance,
        sources: Mapping[str, Mapping[str, object]],
    ) -> None:
        members = [m for m in provenance.members if m in sources]
        if len(members) != len(provenance.members):
            return  # the membership violations are reported separately
        mo = cube.mo
        for measure_name in mo.schema.measure_names:
            aggregate = mo.measures[measure_name].aggregate
            expected = aggregate(
                sources[member][measure_name] for member in members
            )
            actual = mo.measure_value(fact_id, measure_name)
            if not _values_equal(actual, expected):
                report.violations.append(
                    f"{cube.name}: fact {fact_id!r} measure "
                    f"{measure_name!r} is {actual!r}, expected {expected!r} "
                    f"(aggregate of {len(members)} sources)"
                )
            report.checked_measures += 1

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self) -> MultidimensionalObject:
        """The union of all subcubes as one MO (for audits and tests)."""
        union = self._template.empty_like()
        for cube in self._cubes.values():
            mo = cube.mo
            for fact_id in mo.facts():
                union.insert_aggregate_fact(
                    fact_id,
                    dict(
                        zip(
                            mo.schema.dimension_names,
                            mo.direct_cell(fact_id),
                        )
                    ),
                    {
                        name: mo.measure_value(fact_id, name)
                        for name in mo.schema.measure_names
                    },
                    mo.provenance(fact_id),
                )
        return union

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shape = {name: cube.n_facts for name, cube in self._cubes.items()}
        return f"SubcubeStore({shape})"


def _values_equal(actual: object, expected: object) -> bool:
    if actual == expected:
        return True
    if isinstance(actual, float) or isinstance(expected, float):
        try:
            return abs(float(actual) - float(expected)) <= 1e-9 * max(  # type: ignore[arg-type]
                1.0, abs(float(actual)), abs(float(expected))  # type: ignore[arg-type]
            )
        except (TypeError, ValueError):
            return False
    return False


def _rollup(dimension, value: str, category: str) -> str:
    value = dimension.normalize_value(value)
    ancestor = dimension.try_ancestor_at(value, category)
    if ancestor is None:
        raise EngineError(
            f"{dimension.name}: cannot roll {value!r} up to {category!r}"
        )
    return ancestor


def _value_day_span(dimension, value: str) -> tuple[float, float] | None:
    """The day-ordinal extent of one dimension value, or ``None`` when it
    cannot be bounded (forcing examination)."""
    if value == ALL_VALUE:
        return None
    try:
        category = dimension.category_of(value)
    except ReproError:
        return None
    if category == TOP:
        return None
    try:
        return (
            float(first_day(category, value).toordinal()),
            float(last_day(category, value).toordinal()),
        )
    except (ReproError, ValueError):
        return None
