"""The subcube store: Figure 6's architecture.

New data enters the bottom-granularity cube; synchronization migrates
facts between cubes as ``NOW`` advances (Section 7.2); queries run against
all cubes and combine (Section 7.3, in :mod:`repro.engine.queryproc`).

Fact-to-cube assignment uses the responsibility semantics directly: a
fact belongs to the granularity group that is ``<=_V``-maximal among the
actions whose (raw) predicate its cell satisfies — the same ``Cell``
machinery as the monolithic reducer, which is what makes the store
provably equivalent to ``reduce_mo`` (property-tested).
"""

from __future__ import annotations

import datetime as _dt
import types
from typing import Iterable, Mapping

from ..core.dimension import ALL_VALUE
from ..core.facts import Provenance
from ..core.hierarchy import TOP
from ..core.mo import MultidimensionalObject
from ..errors import EngineError, ReproError
from ..spec.predicate import cell_satisfies
from ..spec.ranges import GRANULE_DAYS
from ..spec.specification import ReductionSpecification
from ..timedim.calendar import first_day, last_day
from ..timedim.now import NowRelative
from .disjoint import DisjointAction, disjoint_actions
from .subcube import SubCube

#: Day-ordinal intervals per dimension within which admission verdicts may
#: have changed between two synchronization times; ``None`` = everywhere.
SuspectRegions = "dict[str, list[tuple[float, float]]] | None"


class SubcubeStore:
    """A warehouse physically organized as disjoint subcubes."""

    def __init__(
        self,
        template: MultidimensionalObject,
        specification: ReductionSpecification,
    ) -> None:
        self._template = template.empty_like()
        self._specification = specification
        self._definitions = disjoint_actions(specification)
        self._cubes: dict[str, SubCube] = {
            definition.name: SubCube(definition, self._template)
            for definition in self._definitions
        }
        self._bottom_name = self._bottom_cube_name()
        self.last_sync: _dt.date | None = None
        #: Facts loaded since the last synchronization (they must be
        #: examined regardless of the suspect-region analysis).
        self._dirty: set[str] = set()
        #: How many facts the last ``synchronize`` actually examined —
        #: the incremental path's work metric, surfaced through
        #: :class:`~repro.engine.sync.MigrationEvent`.
        self.last_sync_examined: int = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def specification(self) -> ReductionSpecification:
        return self._specification

    @property
    def definitions(self) -> tuple[DisjointAction, ...]:
        return self._definitions

    @property
    def cubes(self) -> Mapping[str, SubCube]:
        """A read-only live view of the subcubes (no per-access copy)."""
        return types.MappingProxyType(self._cubes)

    def cube(self, name: str) -> SubCube:
        try:
            return self._cubes[name]
        except KeyError:
            raise EngineError(f"no subcube named {name!r}") from None

    @property
    def bottom_cube(self) -> SubCube:
        return self._cubes[self._bottom_name]

    def total_facts(self) -> int:
        return sum(cube.n_facts for cube in self._cubes.values())

    def _bottom_cube_name(self) -> str:
        bottom = self._template.schema.bottom_granularity()
        for definition in self._definitions:
            if definition.granularity == bottom:
                return definition.name
        raise EngineError("disjoint transformation produced no bottom cube")

    # ------------------------------------------------------------------
    # Loading and synchronization (Section 7.2)
    # ------------------------------------------------------------------

    def load(
        self,
        facts: Iterable[tuple[str, Mapping[str, str], Mapping[str, object]]],
    ) -> int:
        """Bulk-load user facts into the bottom cube (always the entry
        point, per Section 7.2)."""
        bottom = self.bottom_cube
        count = 0
        for fact_id, coordinates, measures in facts:
            stored_id = bottom.insert_at_granularity(
                coordinates, measures, Provenance.of(fact_id)
            )
            self._dirty.add(stored_id)
            count += 1
        return count

    def synchronize(
        self, now: _dt.date, *, incremental: bool = True
    ) -> dict[str, int]:
        """Migrate facts so every cube holds exactly its cells at *now*.

        Returns per-cube migration counts (facts moved *into* each cube).
        Synchronization is idempotent at a fixed time and monotone for
        Growing specifications: facts only ever move from finer cubes to
        coarser ones.

        With ``incremental=True`` (the default) and a previous sync time on
        record, only *suspect* facts are examined: facts loaded since the
        last sync, plus facts whose time-dimension extent intersects a
        region where some NOW-relative atom's boundary lay at the old or
        new time.  A fact outside every such region satisfies exactly the
        same atoms at both times, so its target cube cannot have changed —
        skipping it is sound, and the incremental path is bit-for-bit
        equivalent to a full rescan (property-tested).  The number of facts
        actually examined is exposed as :attr:`last_sync_examined`.
        """
        if self.last_sync is not None and now < self.last_sync:
            raise EngineError(
                f"synchronization time moved backwards ({self.last_sync} -> {now})"
            )
        regions = None
        if incremental and self.last_sync is not None:
            regions = self._suspect_regions(self.last_sync, now)
        moved: dict[str, int] = {name: 0 for name in self._cubes}
        examined = 0
        dimensions = self._template.dimensions
        names = self._template.schema.dimension_names
        span_cache: dict[tuple[str, str], tuple[float, float] | None] = {}
        # Facts this run already placed: their target was just computed at
        # *now*, so re-examining them in a later-iterated cube is wasted
        # work (and would double-count the examined metric).
        settled: set[str] = set()
        for cube in self._cubes.values():
            mo = cube.mo
            for fact_id in list(mo.facts()):
                if fact_id in settled:
                    continue
                if (
                    regions is not None
                    and fact_id not in self._dirty
                    and not self._needs_examination(
                        mo, fact_id, regions, span_cache
                    )
                ):
                    continue
                examined += 1
                cell = dict(zip(names, mo.direct_cell(fact_id)))
                target = self._target_cube(cell, now)
                if target.name == cube.name:
                    continue
                coordinates = {
                    name: _rollup(dimensions[name], cell[name], category)
                    for name, category in zip(names, target.granularity)
                }
                measures = {
                    measure: mo.measure_value(fact_id, measure)
                    for measure in mo.schema.measure_names
                }
                provenance = mo.provenance(fact_id)
                cube.remove(fact_id)
                settled.add(
                    target.insert_at_granularity(
                        coordinates, measures, provenance
                    )
                )
                moved[target.name] += 1
        self.last_sync = now
        self.last_sync_examined = examined
        self._dirty.clear()
        return moved

    def _suspect_regions(self, old: _dt.date, new: _dt.date):
        """Per-dimension day intervals where verdicts may have flipped.

        For every NOW-relative term of every atom, the hull of the granule
        the term denoted at *old* and the granule it denotes at *new*: an
        atom's verdict for a value can only change when the value's day
        extent meets that hull (order atoms flip exactly for values between
        the two boundaries; equality/membership atoms flip exactly for
        values overlapping either denoted granule).  ``None`` means the
        analysis cannot bound the change (a NOW term at an unmodelled
        category) and a full rescan is required.
        """
        regions: dict[str, list[tuple[float, float]]] = {}
        for action in self._specification.actions:
            for atoms in action.conjuncts():
                for atom in atoms:
                    now_terms = [
                        term
                        for term in atom.terms
                        if isinstance(term, NowRelative)
                    ]
                    if not now_terms:
                        continue
                    category = atom.ref.category
                    if category == TOP or category not in GRANULE_DAYS:
                        return None
                    for term in now_terms:
                        try:
                            old_value = term.evaluate(old, category)
                            new_value = term.evaluate(new, category)
                            lo = min(
                                first_day(category, old_value).toordinal(),
                                first_day(category, new_value).toordinal(),
                            )
                            hi = max(
                                last_day(category, old_value).toordinal(),
                                last_day(category, new_value).toordinal(),
                            )
                        except ReproError:
                            return None
                        regions.setdefault(atom.ref.dimension, []).append(
                            (float(lo), float(hi))
                        )
        return regions

    def _needs_examination(
        self,
        mo: MultidimensionalObject,
        fact_id: str,
        regions: Mapping[str, list[tuple[float, float]]],
        span_cache: dict[tuple[str, str], tuple[float, float] | None],
    ) -> bool:
        """Whether a fact's values meet any suspect region.

        Values whose day extent cannot be bounded (the top value, TOP
        category, or non-calendar values) are always examined — a sound
        fallback, never an unsound skip.
        """
        dimensions = self._template.dimensions
        for name, intervals in regions.items():
            value = mo.direct_value(fact_id, name)
            key = (name, value)
            if key in span_cache:
                span = span_cache[key]
            else:
                span = _value_day_span(dimensions[name], value)
                span_cache[key] = span
            if span is None:
                return True
            lo, hi = span
            for region_lo, region_hi in intervals:
                if lo <= region_hi and region_lo <= hi:
                    return True
        return False

    def _target_cube(self, cell: Mapping[str, str], now: _dt.date) -> SubCube:
        """The cube responsible for a cell at *now*: the ``<=_V``-maximal
        granularity among satisfied actions, else the bottom cube."""
        schema = self._template.schema
        dimensions = self._template.dimensions
        best: tuple[str, ...] | None = None
        for action in self._specification.actions:
            if not cell_satisfies(dimensions, cell, action.predicate, now):
                continue
            if best is None or schema.le_granularity(best, action.cat()):
                best = action.cat()
            elif not schema.le_granularity(action.cat(), best):
                raise EngineError(
                    f"cell {dict(cell)!r} is claimed by incomparable "
                    f"granularities {best!r} and {action.cat()!r}; the "
                    "specification is crossing"
                )
        if best is None:
            return self.bottom_cube
        for definition in self._definitions:
            if definition.granularity == best and not definition.is_residual:
                return self._cubes[definition.name]
        # A "useless" bottom-granularity action group merged into K0.
        return self.bottom_cube

    # ------------------------------------------------------------------
    # Specification changes (the infrequent synchronization case)
    # ------------------------------------------------------------------

    def rebuild(
        self, specification: ReductionSpecification, now: _dt.date
    ) -> None:
        """Re-derive the disjoint set after a specification change.

        New cubes are created, all facts re-assigned (from *all* old
        cubes, as Section 7.2 prescribes), and cubes that no longer exist
        are dropped once empty.
        """
        old_cubes = self._cubes
        self._specification = specification
        self._definitions = disjoint_actions(specification)
        self._cubes = {
            definition.name: SubCube(definition, self._template)
            for definition in self._definitions
        }
        self._bottom_name = self._bottom_cube_name()
        names = self._template.schema.dimension_names
        dimensions = self._template.dimensions
        for cube in old_cubes.values():
            mo = cube.mo
            for fact_id in mo.facts():
                cell = dict(zip(names, mo.direct_cell(fact_id)))
                target = self._target_cube(cell, now)
                if not self._template.schema.le_granularity(
                    tuple(
                        dimensions[name].category_of(cell[name])
                        for name in names
                    ),
                    target.granularity,
                ):
                    raise EngineError(
                        f"rebuild would disaggregate fact {fact_id!r}; the "
                        "new specification violates irreversibility"
                    )
                coordinates = {
                    name: _rollup(dimensions[name], cell[name], category)
                    for name, category in zip(names, target.granularity)
                }
                measures = {
                    measure: mo.measure_value(fact_id, measure)
                    for measure in mo.schema.measure_names
                }
                target.insert_at_granularity(
                    coordinates, measures, mo.provenance(fact_id)
                )
        self.last_sync = now
        self._dirty.clear()

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------

    def materialize(self) -> MultidimensionalObject:
        """The union of all subcubes as one MO (for audits and tests)."""
        union = self._template.empty_like()
        for cube in self._cubes.values():
            mo = cube.mo
            for fact_id in mo.facts():
                union.insert_aggregate_fact(
                    fact_id,
                    dict(
                        zip(
                            mo.schema.dimension_names,
                            mo.direct_cell(fact_id),
                        )
                    ),
                    {
                        name: mo.measure_value(fact_id, name)
                        for name in mo.schema.measure_names
                    },
                    mo.provenance(fact_id),
                )
        return union

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        shape = {name: cube.n_facts for name, cube in self._cubes.items()}
        return f"SubcubeStore({shape})"


def _rollup(dimension, value: str, category: str) -> str:
    value = dimension.normalize_value(value)
    ancestor = dimension.try_ancestor_at(value, category)
    if ancestor is None:
        raise EngineError(
            f"{dimension.name}: cannot roll {value!r} up to {category!r}"
        )
    return ancestor


def _value_day_span(dimension, value: str) -> tuple[float, float] | None:
    """The day-ordinal extent of one dimension value, or ``None`` when it
    cannot be bounded (forcing examination)."""
    if value == ALL_VALUE:
        return None
    try:
        category = dimension.category_of(value)
    except ReproError:
        return None
    if category == TOP:
        return None
    try:
        return (
            float(first_day(category, value).toordinal()),
            float(last_day(category, value).toordinal()),
        )
    except (ReproError, ValueError):
        return None
