"""Deterministic fault injection for the durable store engine.

A :class:`FaultInjector` owns a set of named *failpoints* — well-known
call sites inside the durable store (:mod:`repro.engine.durable`) where a
process crash would be most damaging.  Each failpoint can be armed to
fire on its N-th hit, with a probability per hit (seeded RNG, so runs are
reproducible), or a bounded number of times.  Firing raises
:class:`InjectedFault`, which the crash-recovery tests treat as the
moment the process died: nothing after the raise may be assumed to have
happened, and recovery from disk must land on a consistent state.

Beyond simulated crashes, a failpoint can carry a *payload* that shapes
what firing does:

* :class:`DiskFault` raises a realistic ``OSError`` with the given
  ``errno`` (ENOSPC, EIO, ...) instead of :class:`InjectedFault`, so the
  durable engine's error handling sees exactly what a full or failing
  disk would produce;
* :class:`SlowFault` injects latency (a blocking sleep) and lets the
  call proceed — the model of a stalling disk or an overloaded sync,
  which the serving layer's deadline and backpressure machinery must
  absorb rather than crash on.

Failpoints can also be armed from the environment
(``REPRO_FAILPOINTS="journal.append=2,sync.migrate=p0.25"`` with
``REPRO_FAULT_SEED=1``), which is how the CI fault-injection and
serving-chaos jobs drive the property suites without code changes.
Disk and slow failpoints armed from the environment pick up their
default payloads from :data:`DEFAULT_PAYLOADS`.
"""

from __future__ import annotations

import errno as _errno
import os
import random
import time
from dataclasses import dataclass, field

from ..errors import ReproError

#: The failpoint catalogue: every site the durable engine consults, with
#: the crash the site simulates.  Tests iterate this to prove recovery
#: works no matter where the process dies.
FAILPOINTS: tuple[str, ...] = (
    "journal.append",  # before a journal record reaches the file
    "journal.torn",  # after a *prefix* of a record is written (torn write)
    "journal.fsync",  # after write, before the journal fsync returns
    "snapshot.write",  # before the snapshot temp file is written
    "snapshot.fsync",  # after the temp file is written, before fsync
    "snapshot.rename",  # before the atomic rename publishes the snapshot
    "snapshot.manifest",  # before the manifest pointer is replaced
    "load.insert",  # mid bulk-load, after some facts were staged
    "sync.migrate",  # mid synchronization, after some facts moved
)

#: Additional failpoints consulted only by the shard-parallel layer
#: (:mod:`repro.parallel`).  Kept out of :data:`FAILPOINTS` because the
#: serial crash-recovery reference script asserts it hits every entry of
#: that catalogue; these sites only exist once sharding is in play.
SHARD_FAILPOINTS: tuple[str, ...] = (
    "shard.plan",  # after the shard plan is built, before any worker runs
    "shard.segment.commit",  # before a worker's segment commit record
    "shard.apply",  # mid merge, after some shard results were applied
)

#: Disk- and server-level failpoints for the serving layer's chaos
#: suite (:mod:`repro.serving`).  The ``disk.*`` sites sit inside the
#: durable engine's write paths and default to realistic ``OSError``
#: payloads; the ``serve.*`` and ``sync.slow`` sites model a crashing
#: handler and a stalling synchronization, which the server must absorb
#: (degraded stale-snapshot serving) instead of exiting.
SERVING_FAILPOINTS: tuple[str, ...] = (
    "disk.enospc",  # journal append / snapshot publish hits a full disk
    "disk.eio",  # journal append / snapshot publish hits an I/O error
    "sync.slow",  # synchronization stalls (latency, not a crash)
    "serve.handler",  # a request handler dies mid-request
    "serve.slow",  # a request handler stalls past its deadline
)

#: Failpoints consulted by the streaming ingest path
#: (:mod:`repro.ingest`).  ``ingest.batch`` sits just before a group
#: commit reaches the journal (a crash there loses the whole in-flight
#: batch, never part of it), ``ingest.commit`` just after the commit
#: record is durable (a crash there must replay the full batch), and
#: ``ingest.deadletter`` before a rejected row is appended to the
#: dead-letter file.
INGEST_FAILPOINTS: tuple[str, ...] = (
    "ingest.batch",  # before the group-commit journal record is written
    "ingest.commit",  # after the batch committed, before the ack
    "ingest.deadletter",  # before a bad row reaches the dead-letter file
)


@dataclass(frozen=True)
class DiskFault:
    """A failpoint payload that raises ``OSError(errno, ...)`` on fire."""

    errno: int

    def raise_for(self, name: str, hit: int) -> None:
        code = _errno.errorcode.get(self.errno, str(self.errno))
        raise OSError(
            self.errno, f"injected {code} at {name!r} (hit {hit})"
        )


@dataclass(frozen=True)
class SlowFault:
    """A failpoint payload that sleeps instead of raising: the call
    proceeds, late — a stalling disk or sync, not a dead process."""

    seconds: float


#: Payloads failpoints armed without an explicit one default to (used
#: by :meth:`FaultInjector.arm` and environment-driven arming).
DEFAULT_PAYLOADS: dict[str, object] = {
    "disk.enospc": DiskFault(_errno.ENOSPC),
    "disk.eio": DiskFault(_errno.EIO),
    "sync.slow": SlowFault(0.05),
    "serve.slow": SlowFault(0.05),
}


class InjectedFault(ReproError):
    """A simulated crash raised by an armed failpoint."""

    def __init__(self, name: str, hit: int) -> None:
        self.failpoint = name
        self.hit = hit
        super().__init__(f"injected fault at {name!r} (hit {hit})")


@dataclass
class _Arming:
    """One failpoint's trigger configuration."""

    #: Fire on this hit number (1-based); ``None`` = every eligible hit.
    at_hit: int | None = None
    #: Fire with this probability per hit; ``None`` = always eligible.
    probability: float | None = None
    #: Stop firing after this many fires; ``None`` = unbounded.
    max_fires: int | None = None
    #: What firing does: ``None`` raises :class:`InjectedFault`, a
    #: :class:`DiskFault` raises ``OSError``, a :class:`SlowFault` sleeps.
    payload: object | None = None
    hits: int = 0
    fires: int = 0


@dataclass
class FaultInjector:
    """Named, seeded, countable failpoints.

    ``arm("journal.append", at_hit=3)`` fires on exactly the third time
    the journal tries to append; ``arm("sync.migrate",
    probability=0.25)`` fires on each migration with probability 0.25
    from the injector's seeded RNG.  An unarmed failpoint never fires,
    so production code can consult failpoints unconditionally at zero
    configuration cost.
    """

    seed: int = 0
    _armed: dict[str, _Arming] = field(default_factory=dict)
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def arm(
        self,
        name: str,
        *,
        at_hit: int | None = None,
        probability: float | None = None,
        max_fires: int | None = None,
        payload: object | None = None,
    ) -> None:
        known_names = (
            FAILPOINTS
            + SHARD_FAILPOINTS
            + SERVING_FAILPOINTS
            + INGEST_FAILPOINTS
        )
        if name not in known_names:
            known = ", ".join(known_names)
            raise ReproError(f"unknown failpoint {name!r}; known: {known}")
        if at_hit is None and probability is None:
            at_hit = 1
        if payload is None:
            payload = DEFAULT_PAYLOADS.get(name)
        self._armed[name] = _Arming(at_hit, probability, max_fires, payload)

    def disarm(self, name: str | None = None) -> None:
        """Disarm one failpoint, or all of them when *name* is None."""
        if name is None:
            self._armed.clear()
        else:
            self._armed.pop(name, None)

    def hit(self, name: str) -> None:
        """Consult a failpoint; raises :class:`InjectedFault` if it fires."""
        arming = self._armed.get(name)
        if arming is None:
            return
        arming.hits += 1
        if arming.max_fires is not None and arming.fires >= arming.max_fires:
            return
        if arming.at_hit is not None and arming.hits != arming.at_hit:
            return
        if (
            arming.probability is not None
            and self._rng.random() >= arming.probability
        ):
            return
        arming.fires += 1
        if isinstance(arming.payload, SlowFault):
            time.sleep(arming.payload.seconds)
            return
        if isinstance(arming.payload, DiskFault):
            arming.payload.raise_for(name, arming.hits)
        raise InjectedFault(name, arming.hits)

    def hit_count(self, name: str) -> int:
        """How many times an armed failpoint has been consulted."""
        arming = self._armed.get(name)
        return arming.hits if arming is not None else 0

    def fire_count(self, name: str) -> int:
        arming = self._armed.get(name)
        return arming.fires if arming is not None else 0

    @classmethod
    def from_environment(
        cls,
        spec: str | None = None,
        seed: int | None = None,
    ) -> "FaultInjector":
        """Build an injector from ``REPRO_FAILPOINTS``.

        The spec is a comma- or semicolon-separated list of
        ``name=trigger`` items where the trigger is a hit number
        (``journal.append=2``), a probability (``sync.migrate=p0.25``),
        or ``*`` for every hit.  The RNG seed comes from
        ``REPRO_FAULT_SEED`` (default 0).
        """
        if spec is None:
            spec = os.environ.get("REPRO_FAILPOINTS", "")
        if seed is None:
            seed = int(os.environ.get("REPRO_FAULT_SEED", "0"))
        injector = cls(seed=seed)
        for item in spec.replace(";", ",").split(","):
            item = item.strip()
            if not item:
                continue
            name, _, trigger = item.partition("=")
            name = name.strip()
            trigger = trigger.strip() or "1"
            if trigger == "*":
                injector.arm(name, at_hit=None, probability=1.0)
            elif trigger.startswith("p"):
                try:
                    probability = float(trigger[1:])
                except ValueError:
                    raise ReproError(
                        f"bad failpoint trigger {item!r}: probability "
                        "must look like p0.25"
                    ) from None
                injector.arm(name, probability=probability)
            else:
                try:
                    at_hit = int(trigger)
                except ValueError:
                    raise ReproError(
                        f"bad failpoint trigger {item!r}: expected a hit "
                        "number, p<float>, or *"
                    ) from None
                injector.arm(name, at_hit=at_hit)
        return injector


#: A process-wide injector with nothing armed: the default for durable
#: stores constructed without an explicit injector.
PASSIVE = FaultInjector()
