"""A physical subcube: one disjoint action's worth of facts.

Each subcube is itself a small MO over the warehouse's dimensions, with a
fixed target granularity and the disjoint predicate that describes (at any
evaluation time) exactly which cells it owns.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from ..core.facts import Provenance, aggregate_fact_id
from ..core.mo import MultidimensionalObject
from ..errors import EngineError
from .disjoint import DisjointAction


class SubCube:
    """One subcube ``K_i`` of the Section 7 architecture."""

    #: Set (per instance) by the mutation sanitizer when this cube
    #: belongs to a published snapshot (see :mod:`repro.sanitize`).
    _sealed = False

    def __init__(
        self,
        definition: DisjointAction,
        template: MultidimensionalObject,
    ) -> None:
        self.definition = definition
        self._mo = template.empty_like()

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def granularity(self) -> tuple[str, ...]:
        return self.definition.granularity

    @property
    def mo(self) -> MultidimensionalObject:
        return self._mo

    @property
    def n_facts(self) -> int:
        return self._mo.n_facts

    def facts(self) -> Iterator[str]:
        return self._mo.facts()

    def _normalized_cell(
        self, coordinates: Mapping[str, str]
    ) -> tuple[str, ...]:
        """The canonical cell tuple, with typed errors for bad input."""
        mo = self._mo
        try:
            return tuple(
                mo.dimensions[name].normalize_value(coordinates[name])
                for name in mo.schema.dimension_names
            )
        except KeyError as exc:
            raise EngineError(
                f"{self.name}: cell lacks a coordinate for dimension "
                f"{exc.args[0]!r}"
            ) from None

    def cell_fact_id(self, coordinates: Mapping[str, str]) -> str:
        """The fact id the given cell is (or would be) stored under.

        Cube fact ids are cell-keyed, so callers can compute the id a
        pending insert will land on — the transactional store uses this
        to record before-images without mutating anything.
        """
        return aggregate_fact_id((self.name, *self._normalized_cell(coordinates)))

    def insert_at_granularity(
        self,
        coordinates: Mapping[str, str],
        measures: Mapping[str, object],
        provenance: Provenance,
    ) -> str:
        """Insert (or merge into) the fact owning the given cell.

        The cell must already be at the cube's granularity; a colliding
        cell aggregates the measures — the "one final aggregation" step of
        Section 7.2 when a cube has several parents.
        """
        mo = self._mo
        schema = mo.schema
        cell = self._normalized_cell(coordinates)
        for name, category, value in zip(
            schema.dimension_names, self.granularity, cell
        ):
            if mo.dimensions[name].category_of(value) != category:
                raise EngineError(
                    f"{self.name}: value {value!r} of {name!r} is not at the "
                    f"cube granularity {category!r}"
                )
        fact_id = aggregate_fact_id((self.name, *cell))
        if fact_id in mo:
            merged = {
                measure_name: mo.measures[measure_name].aggregate(
                    [mo.measure_value(fact_id, measure_name), measures[measure_name]]
                )
                for measure_name in schema.measure_names
            }
            existing_provenance = mo.provenance(fact_id)
            mo.delete_fact(fact_id)
            mo.insert_aggregate_fact(
                fact_id,
                dict(zip(schema.dimension_names, cell)),
                merged,
                existing_provenance.merge(provenance),
            )
        else:
            mo.insert_aggregate_fact(
                fact_id,
                dict(zip(schema.dimension_names, cell)),
                dict(measures),
                provenance,
            )
        return fact_id

    def remove(self, fact_id: str) -> None:
        self._mo.delete_fact(fact_id)

    def clear(self) -> None:
        if self._sealed:
            from ..sanitize import check_unsealed

            check_unsealed(self, f"clear of cube {self.name!r}")
        self._mo = self._mo.empty_like()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        granularity = "/".join(self.granularity)
        return f"SubCube({self.name}, gran={granularity}, facts={self.n_facts})"
