"""Synchronization scheduling and data-flow reporting (Section 7.2).

The store's :meth:`~repro.engine.store.SubcubeStore.synchronize` does the
actual migration; this module adds the operational layer the paper
sketches: when to synchronize (at bulk-load time and at least once per
significant period — the second-lowest granularity at which NOW appears),
and a migration report for observability (the content of Figure 7).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..spec.ranges import GRANULE_DAYS, profiles_of
from ..timedim.granularity import DAY
from .store import SYNC_LAST_EXAMINED, SubcubeStore


@dataclass(frozen=True)
class MigrationEvent:
    """One synchronization run's outcome.

    ``examined`` counts the facts the run actually inspected — on the
    incremental path this is typically far below the store's total fact
    count, which is the work saving the event exists to make visible.
    """

    at: _dt.date
    moved_into: Mapping[str, int]
    examined: int = 0

    @property
    def total_moved(self) -> int:
        return sum(self.moved_into.values())


def significant_period_days(store: SubcubeStore) -> int:
    """The paper's *significant time period* in days.

    The granularity of the NOW variable in each action limits how often a
    cube can get out of sync; synchronizing once per the finest such
    granularity keeps cubes at most one parent-child level stale, which is
    the assumption Section 7.2's simple migration relies on.
    """
    finest = None
    for action in store.specification.actions:
        for profile in profiles_of(action):
            for atom in profile.time_atoms:
                if not atom.is_now_relative():
                    continue
                days = GRANULE_DAYS.get(atom.ref.category, 1)
                if finest is None or days < finest:
                    finest = days
    return finest if finest is not None else GRANULE_DAYS[DAY]


@dataclass
class SyncScheduler:
    """Drives periodic synchronization of a store as the clock advances."""

    store: SubcubeStore
    period_days: int | None = None
    events: list[MigrationEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_days is None:
            self.period_days = significant_period_days(self.store)

    def on_bulk_load(
        self,
        facts: Iterable[tuple[str, Mapping[str, str], Mapping[str, object]]],
        now: _dt.date,
    ) -> MigrationEvent:
        """Load facts and synchronize immediately (the frequent case)."""
        self.store.load(facts)
        return self._sync(now)

    def resume(self, report) -> MigrationEvent | None:
        """Complete an interrupted synchronization found by recovery.

        Takes the :class:`~repro.engine.durable.RecoveryReport` of
        :func:`~repro.engine.durable.open_durable`; when it carries an
        ``interrupted_sync`` time (a ``sync_begin`` whose commit never
        reached the disk), the sync is re-run at that exact time.
        Synchronization is deterministic and idempotent at a fixed time,
        so this lands on the same state an uninterrupted run would have
        produced.  Returns the migration event, or ``None`` when there
        was nothing to resume.
        """
        if report.interrupted_sync is None:
            return None
        return self._sync(report.interrupted_sync)

    def advance_to(self, now: _dt.date) -> list[MigrationEvent]:
        """Advance the clock, synchronizing once per period on the way."""
        events: list[MigrationEvent] = []
        last = self.store.last_sync
        period = self.period_days or 1
        if last is None:
            events.append(self._sync(now))
            return events
        current = last
        while (now - current).days > period:
            current = current + _dt.timedelta(days=period)
            events.append(self._sync(current))
        if current < now:
            events.append(self._sync(now))
        return events

    def _sync(self, now: _dt.date) -> MigrationEvent:
        moved = self.store.synchronize(now)
        examined = int(
            self.store.metrics.value(SYNC_LAST_EXAMINED) or 0
        )
        event = MigrationEvent(now, moved, examined)
        self.events.append(event)
        return event


def flow_report(store: SubcubeStore) -> dict[str, dict[str, object]]:
    """A per-cube snapshot: granularity, fact count, parents (Figure 7)."""
    report: dict[str, dict[str, object]] = {}
    for definition in store.definitions:
        cube = store.cube(definition.name)
        report[definition.name] = {
            "granularity": definition.granularity,
            "facts": cube.n_facts,
            "parents": definition.parents,
            "members": definition.members,
        }
    return report
