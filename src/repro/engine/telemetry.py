"""Metric families of the engine layer (sync, store, query, durability).

The single registry of every ``repro_sync_*`` / ``repro_store_*`` /
``repro_query_*`` / ``repro_journal_*`` / ``repro_snapshot_*`` /
``repro_recovery_*`` / ``repro_disjoint_*`` metric name.  Use sites
import these constants rather than repeating the strings — the
self-check pass (``repro selfcheck``, rule RL005) enforces that every
metric literal lives in exactly one ``telemetry``/``obs`` module and is
catalogued in ``docs/observability.md``, so names cannot silently
drift between the code, the dashboards, and the docs.
"""

from __future__ import annotations

# Synchronization (SubcubeStore.synchronize) ------------------------------
SYNC_RUNS = "repro_sync_runs_total"
SYNC_EXAMINED = "repro_sync_facts_examined_total"
SYNC_MIGRATED = "repro_sync_facts_migrated_total"
SYNC_SKIPPED = "repro_sync_facts_skipped_total"
SYNC_LAST_EXAMINED = "repro_sync_last_examined"
SYNC_LAST_MIGRATED = "repro_sync_last_migrated"
SYNC_LAST_SKIPPED = "repro_sync_last_skipped"
SYNC_UNDO_LOG = "repro_sync_undo_log_size"
SYNC_SECONDS = "repro_sync_seconds"

# Store lifecycle ---------------------------------------------------------
STORE_LOADED = "repro_store_facts_loaded_total"
STORE_REBUILDS = "repro_store_rebuilds_total"

# Query processor ---------------------------------------------------------
# The plan cache has two layers, distinguished by the ``cache`` label:
# ``bound`` (predicate text -> bound AST) and ``plan`` ((predicate,
# time) -> compiled verdict tables).  Row counters carry a ``stage``
# label naming the operator: ``scanned``, ``subresult``, ``result``.
QUERY_RUNS = "repro_query_runs_total"
QUERY_CACHE_HITS = "repro_query_plan_cache_hits_total"
QUERY_CACHE_MISSES = "repro_query_plan_cache_misses_total"
QUERY_ROWS = "repro_query_rows_total"
QUERY_SECONDS = "repro_query_seconds"

# Durability --------------------------------------------------------------
JOURNAL_RECORDS = "repro_journal_records_total"
JOURNAL_BYTES = "repro_journal_bytes_total"
JOURNAL_FSYNC = "repro_journal_fsync_total"
SNAPSHOT_WRITES = "repro_snapshot_writes_total"
RECOVERY_REPLAYED = "repro_recovery_replayed_records"
RECOVERY_DISCARDED = "repro_recovery_discarded_records"
RECOVERY_ABORTED = "repro_recovery_aborted_transactions"

# Streaming ingest (repro.ingest) -----------------------------------------
# Incremented per batch/stream (never per fact), labelled by outcome:
# ``committed`` facts reached the store, ``skipped``/``dead_lettered``
# fell to the error policy, ``rejected`` refused admission at the queue.
INGEST_FACTS = "repro_ingest_facts_total"
#: Group commits, labelled by what triggered the flush
#: (``size`` | ``timer`` | ``final``).
INGEST_BATCHES = "repro_ingest_batches_total"
#: Wall-clock seconds per group commit (journal record + inserts).
INGEST_COMMIT_SECONDS = "repro_ingest_commit_seconds"
#: Rows waiting in the bounded ingest queue (sampled at stall/drain).
INGEST_QUEUE_DEPTH = "repro_ingest_queue_depth"
#: Times a producer blocked on a full queue (backpressure engaged).
INGEST_STALLS = "repro_ingest_producer_stalls_total"

# Disjoint-predicate construction -----------------------------------------
#: Negation terms considered per cube, labelled kept/pruned.
DISJOINT_NEGATIONS = "repro_disjoint_negation_terms_total"
#: Atom count of each cube's final disjoint predicate.
DISJOINT_ATOMS = "repro_disjoint_predicate_atoms"
#: Wall-clock seconds spent building the disjoint action set.
DISJOINT_BUILD_SECONDS = "repro_disjoint_build_seconds"
