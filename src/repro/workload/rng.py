"""Deterministic randomness helpers for workload generation.

All generators take explicit seeds so that examples, tests, and benchmarks
are reproducible run-to-run (and so that workload shape — not sampling
noise — drives the benchmark numbers).
"""

from __future__ import annotations

import random
from typing import Sequence


def make_rng(seed: int) -> random.Random:
    """A dedicated deterministic RNG for one generator instance."""
    return random.Random(seed)


def zipf_weights(n: int, skew: float = 1.1) -> list[float]:
    """Zipf-like popularity weights for *n* items (rank 1 most popular).

    Click-stream URL popularity is famously heavy-tailed; a Zipf exponent
    around 1 reproduces the qualitative shape.
    """
    if n <= 0:
        raise ValueError("need at least one item")
    weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def weighted_choice(
    rng: random.Random, items: Sequence, weights: Sequence[float]
):
    """One draw from *items* under *weights* (cumulative scan)."""
    target = rng.random()
    cumulative = 0.0
    for item, weight in zip(items, weights):
        cumulative += weight
        if target <= cumulative:
            return item
    return items[-1]
