"""Synthetic ISP click-stream workloads (the paper's motivating domain).

Generates the same shape of data as the paper's running example, at
configurable scale: a URL dimension with url < domain < domain_grp, a
materialized Time dimension over a date range, and click facts with the
four measures of Table 2 (Number_of, Dwell_time, Delivery_time, Datasize).

URL popularity is Zipf-skewed and click times are uniform per day with a
configurable daily volume, so the age distribution of facts — the thing
reduction actually acts on — is controlled and reproducible.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator

from ..core.builder import MOBuilder, dimension_from_rows, dimension_type_from_chains
from ..core.dimension import Dimension
from ..core.mo import MultidimensionalObject
from ..timedim.builder import build_time_dimension
from ..timedim.calendar import day_value, iter_days
from .rng import make_rng, weighted_choice, zipf_weights

#: Default domain groups and their relative sizes.
DOMAIN_GROUPS = (".com", ".edu", ".org", ".net")


@dataclass(frozen=True)
class ClickstreamConfig:
    """Knobs of the synthetic click-stream."""

    start: _dt.date = _dt.date(1999, 1, 1)
    end: _dt.date = _dt.date(2000, 12, 31)
    domains_per_group: int = 5
    urls_per_domain: int = 4
    clicks_per_day: int = 20
    url_skew: float = 1.1
    seed: int = 42


def build_url_dimension(config: ClickstreamConfig) -> Dimension:
    """A URL dimension with the paper's url < domain < domain_grp chain."""
    rows = list(_url_rows(config))
    dimension_type = dimension_type_from_chains(
        "URL", [["url", "domain", "domain_grp"]]
    )
    return dimension_from_rows(dimension_type, rows)


def _url_rows(config: ClickstreamConfig) -> Iterator[dict[str, str]]:
    for group in DOMAIN_GROUPS:
        for d in range(config.domains_per_group):
            domain = f"site{d}{group}"
            for u in range(config.urls_per_domain):
                yield {
                    "url": f"http://www.{domain}/page{u}",
                    "domain": domain,
                    "domain_grp": group,
                }


def build_clickstream_mo(config: ClickstreamConfig | None = None) -> MultidimensionalObject:
    """A complete click-stream MO: dimensions, schema, and facts."""
    config = config or ClickstreamConfig()
    builder = (
        MOBuilder("Click")
        .with_prebuilt_dimension(
            build_time_dimension(config.start, config.end)
        )
        .with_prebuilt_dimension(build_url_dimension(config))
        .with_measure("Number_of")
        .with_measure("Dwell_time")
        .with_measure("Delivery_time")
        .with_measure("Datasize")
    )
    for fact_id, coordinates, measures in generate_clicks(config):
        builder.with_fact(fact_id, coordinates, measures)
    return builder.build()


def generate_clicks(
    config: ClickstreamConfig | None = None,
) -> Iterator[tuple[str, dict[str, str], dict[str, object]]]:
    """Click facts as ``(id, coordinates, measures)`` triples.

    Usable directly with :meth:`Warehouse.load` and
    :meth:`SubcubeStore.load` for incremental-loading scenarios.
    """
    config = config or ClickstreamConfig()
    rng = make_rng(config.seed)
    urls = [row["url"] for row in _url_rows(config)]
    weights = zipf_weights(len(urls), config.url_skew)
    counter = 0
    for date in iter_days(config.start, config.end):
        day = day_value(date)
        for _ in range(config.clicks_per_day):
            url = weighted_choice(rng, urls, weights)
            yield (
                f"click_{counter}",
                {"Time": day, "URL": url},
                {
                    "Number_of": 1,
                    "Dwell_time": rng.randint(1, 3000),
                    "Delivery_time": rng.randint(1, 10),
                    "Datasize": rng.randint(1, 120),
                },
            )
            counter += 1


def tiered_retention_actions(
    mo: MultidimensionalObject,
    detail_months: int = 6,
    month_years: int = 3,
) -> list:
    """The paper's introduction policy: keep detail for *detail_months*,
    then monthly sums until *month_years* years, then yearly sums.

    Returns bound actions ready for a :class:`ReductionSpecification`.
    """
    from ..spec.action import Action

    month_action = Action.parse(
        mo.schema,
        "a[Time.month, URL.domain] "
        f"o[Time.month <= NOW - {detail_months} months]",
        "to_month",
    )
    year_action = Action.parse(
        mo.schema,
        "a[Time.year, URL.domain_grp] "
        f"o[Time.year <= NOW - {month_years} years]",
        "to_year",
    )
    return [month_action, year_action]


def grouped_retention_actions(
    mo: MultidimensionalObject,
    detail_months: int = 3,
    coarse_years: int = 2,
) -> list:
    """A per-group retention policy with statically separable tiers.

    ``.com`` traffic keeps domain detail at monthly resolution, ``.edu``
    traffic only group detail, and everything folds to yearly sums after
    *coarse_years*.  The ``.com``/``.edu`` month tiers constrain the same
    category with disjoint constants, so the disjoint transform can
    statically prove their negation terms redundant
    (:mod:`repro.analysis.pruning`) — the workload the reduction benchmark
    uses to measure predicate-size deltas.
    """
    from ..spec.action import Action

    com_action = Action.parse(
        mo.schema,
        "a[Time.month, URL.domain] o[URL.domain_grp = '.com' AND "
        f"Time.month <= NOW - {detail_months} months]",
        "to_month_com",
    )
    edu_action = Action.parse(
        mo.schema,
        "a[Time.month, URL.domain_grp] o[URL.domain_grp = '.edu' AND "
        f"Time.month <= NOW - {detail_months} months]",
        "to_month_edu",
    )
    year_action = Action.parse(
        mo.schema,
        "a[Time.year, URL.domain_grp] "
        f"o[Time.year <= NOW - {coarse_years} years]",
        "to_year",
    )
    return [com_action, edu_action, year_action]
