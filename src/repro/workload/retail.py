"""A retail-sales workload — the paper's other motivating line of business.

Schema: Sales facts over a Time dimension, a Product dimension
(sku < category < department), and a Store dimension
(store < city < region).  The introduction's example policy — "sums of
sales aggregated from the daily to the monthly level when between six
months and three years old, and further to the yearly level when more
than three years old" — is provided as a ready-made action set.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Iterator

from ..core.builder import MOBuilder, dimension_from_rows, dimension_type_from_chains
from ..core.dimension import Dimension
from ..core.mo import MultidimensionalObject
from ..timedim.builder import build_time_dimension
from ..timedim.calendar import day_value, iter_days
from .rng import make_rng, weighted_choice, zipf_weights

DEPARTMENTS = ("grocery", "electronics", "apparel")
REGIONS = ("north", "south")


@dataclass(frozen=True)
class RetailConfig:
    """Knobs of the synthetic retail-sales workload."""

    start: _dt.date = _dt.date(1998, 1, 1)
    end: _dt.date = _dt.date(2000, 12, 31)
    categories_per_department: int = 3
    skus_per_category: int = 5
    cities_per_region: int = 2
    stores_per_city: int = 2
    sales_per_day: int = 15
    seed: int = 7


def build_product_dimension(config: RetailConfig) -> Dimension:
    """A Product dimension with sku < category < department."""
    rows = list(_product_rows(config))
    dimension_type = dimension_type_from_chains(
        "Product", [["sku", "category", "department"]]
    )
    return dimension_from_rows(dimension_type, rows)


def _product_rows(config: RetailConfig) -> Iterator[dict[str, str]]:
    for department in DEPARTMENTS:
        for c in range(config.categories_per_department):
            category = f"{department}/cat{c}"
            for s in range(config.skus_per_category):
                yield {
                    "sku": f"{category}/sku{s}",
                    "category": category,
                    "department": department,
                }


def build_store_dimension(config: RetailConfig) -> Dimension:
    """A Store dimension with store < city < region."""
    rows = list(_store_rows(config))
    dimension_type = dimension_type_from_chains(
        "Store", [["store", "city", "region"]]
    )
    return dimension_from_rows(dimension_type, rows)


def _store_rows(config: RetailConfig) -> Iterator[dict[str, str]]:
    for region in REGIONS:
        for c in range(config.cities_per_region):
            city = f"{region}-city{c}"
            for s in range(config.stores_per_city):
                yield {
                    "store": f"{city}/store{s}",
                    "city": city,
                    "region": region,
                }


def build_retail_mo(config: RetailConfig | None = None) -> MultidimensionalObject:
    """A complete retail Sales MO: dimensions, schema, and facts."""
    config = config or RetailConfig()
    builder = (
        MOBuilder("Sale")
        .with_prebuilt_dimension(build_time_dimension(config.start, config.end))
        .with_prebuilt_dimension(build_product_dimension(config))
        .with_prebuilt_dimension(build_store_dimension(config))
        .with_measure("Quantity")
        .with_measure("Revenue")
    )
    for fact_id, coordinates, measures in generate_sales(config):
        builder.with_fact(fact_id, coordinates, measures)
    return builder.build()


def generate_sales(
    config: RetailConfig | None = None,
) -> Iterator[tuple[str, dict[str, str], dict[str, object]]]:
    """Sales facts as ``(id, coordinates, measures)`` triples."""
    config = config or RetailConfig()
    rng = make_rng(config.seed)
    skus = [row["sku"] for row in _product_rows(config)]
    stores = [row["store"] for row in _store_rows(config)]
    sku_weights = zipf_weights(len(skus), 1.05)
    counter = 0
    for date in iter_days(config.start, config.end):
        day = day_value(date)
        for _ in range(config.sales_per_day):
            yield (
                f"sale_{counter}",
                {
                    "Time": day,
                    "Product": weighted_choice(rng, skus, sku_weights),
                    "Store": stores[rng.randrange(len(stores))],
                },
                {
                    "Quantity": rng.randint(1, 5),
                    "Revenue": rng.randint(1, 500),
                },
            )
            counter += 1


def introduction_policy_actions(mo: MultidimensionalObject) -> list:
    """The Section 1 example policy, bound to the retail schema.

    Sales aggregate daily -> monthly when 6 months to 3 years old, and
    monthly -> yearly past 3 years (keeping product category and store
    city at the middle tier, department and region at the top tier).
    """
    from ..spec.action import Action

    monthly = Action.parse(
        mo.schema,
        "a[Time.month, Product.category, Store.city] "
        "o[NOW - 3 years <= Time.month AND Time.month <= NOW - 6 months]",
        "monthly_tier",
    )
    yearly = Action.parse(
        mo.schema,
        "a[Time.year, Product.department, Store.region] "
        "o[Time.year <= NOW - 3 years]",
        "yearly_tier",
    )
    return [monthly, yearly]
