"""Synthetic workload generators (click-stream, retail)."""

from .clickstream import (
    ClickstreamConfig,
    build_clickstream_mo,
    build_url_dimension,
    generate_clicks,
    grouped_retention_actions,
    tiered_retention_actions,
)
from .retail import (
    RetailConfig,
    build_retail_mo,
    generate_sales,
    introduction_policy_actions,
)
from .rng import make_rng, weighted_choice, zipf_weights

__all__ = [
    "ClickstreamConfig",
    "RetailConfig",
    "build_clickstream_mo",
    "build_retail_mo",
    "build_url_dimension",
    "generate_clicks",
    "generate_sales",
    "grouped_retention_actions",
    "introduction_policy_actions",
    "make_rng",
    "tiered_retention_actions",
    "weighted_choice",
    "zipf_weights",
]
