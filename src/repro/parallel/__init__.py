"""Certificate-driven shard-parallel execution (ROADMAP item 1).

The paper's Section 7 architecture stores one subcube per disjoint
reduction action — a natural parallel unit — and the semantic analyzer's
:class:`~repro.analysis.independence.IndependenceReport` certifies which
of those units can never exchange a fact.  This package turns that into
process-parallel execution:

* :mod:`.footprint` grounds every action's per-disjunct footprint (exact
  day window × grounded value regions) at the evaluation time and routes
  facts to action signatures;
* :mod:`.partition` packs signature groups into cost-balanced shards
  (:func:`~repro.analysis.cost.estimate_costs` weights, LPT packing,
  contiguous time-range splits for oversized groups);
* :mod:`.executor` fans work over ``concurrent.futures`` worker
  processes (``fork`` start method) with a deterministic serial
  fallback, controlled by ``REPRO_WORKERS`` / ``--workers``;
* :mod:`.reduce` and :mod:`.sync` run reduction and NOW-advance
  synchronization over shards and merge the results **bit-for-bit
  identical** to the serial paths (property-tested);
* :mod:`.forksafe` resets module-level caches in forked children;
* :mod:`.telemetry` reports per-plan counters (facts routed, pruned
  actions, cost skew, per-task wall time) into the metrics registry.

Certificates and footprints are *performance* devices only: the merge
step is correct for any partition of the facts, so an unprovable or
skewed certificate degrades speed, never results.
"""

from .executor import ShardExecutor, resolve_workers
from .partition import ShardPlan, plan_reduction_shards
from .reduce import reduce_mo_sharded
from .sync import synchronize_sharded

__all__ = [
    "ShardExecutor",
    "ShardPlan",
    "plan_reduction_shards",
    "reduce_mo_sharded",
    "resolve_workers",
    "synchronize_sharded",
]
