"""Fork-safety for module-level caches.

Worker processes are forked, so they inherit every module-level cache the
parent built: the ``lru_cache``'d spec parsers, each
:class:`~repro.core.hierarchy.Hierarchy`'s memoized lattice operations,
and every :class:`~repro.engine.queryproc.QueryPlanCache`.  The caches
are pure, so inheriting them is never *incorrect* — but plan caches key
on parent-heap object ids and pin compiled state the child will rebuild
against its own objects anyway, and a child that mutates an inherited
per-instance cache dict shares nothing back.  Clearing them at fork time
gives every worker a clean, minimal cache heap.

:func:`install_fork_guard` is idempotent and registered once per process
via :func:`os.register_at_fork`; platforms without ``fork`` simply never
call the hook.
"""

from __future__ import annotations

import os

_installed = False


def clear_inherited_caches() -> None:
    """Reset every module-level cache a forked child inherited."""
    from ..core.hierarchy import clear_hierarchy_caches
    from ..engine.queryproc import clear_plan_caches
    from ..spec.parser import clear_parser_caches

    clear_parser_caches()
    clear_hierarchy_caches()
    clear_plan_caches()


def install_fork_guard() -> None:
    """Arrange for caches to be cleared in every forked child (once)."""
    global _installed
    if _installed:
        return
    if hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=clear_inherited_caches)
    _installed = True
