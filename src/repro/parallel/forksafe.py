"""Fork-safety for module-level caches.

Worker processes are forked, so they inherit every module-level cache
the parent built: the ``lru_cache``'d spec parsers and calendar memos,
each :class:`~repro.core.hierarchy.Hierarchy`'s memoized lattice
operations, and every :class:`~repro.engine.queryproc.QueryPlanCache`.
The caches are pure, so inheriting them is never *incorrect* — but plan
caches key on parent-heap object ids and pin compiled state the child
will rebuild against its own objects anyway, and a child that mutates
an inherited per-instance cache dict shares nothing back.  Clearing
them at fork time gives every worker a clean, minimal cache heap.

The set of caches to clear is not maintained here: every module that
owns one registers it with :mod:`repro._forkreg` at import time
(clearer + size probe), and :func:`clear_inherited_caches` sweeps the
whole registry.  The static ``RL002`` self-check rule
(:mod:`repro.devlint`) enforces the registration side: a module-level
cache in a worker-imported package that never calls
``register_cache`` is flagged as fork-unsafe.

With ``REPRO_SANITIZE=fork`` the fork hook additionally *verifies* the
sweep: a registered cache whose size probe is non-zero right after
clearing means its clearer is broken.  ``os.register_at_fork`` hooks
cannot usefully raise (the exception would be unraisable in the brand
new child), so the violation is recorded and re-raised by the shard
executor at the worker's first task (:func:`pending_fork_violation`).

:func:`install_fork_guard` is idempotent and registered once per
process via :func:`os.register_at_fork`; platforms without ``fork``
simply never call the hook.
"""

from __future__ import annotations

import os

from .. import _forkreg, sanitize
from ..errors import SanitizerError

_installed = False

#: The fork sanitizer's finding, recorded by the at-fork hook for the
#: executor to surface (at-fork hooks cannot raise usefully).
_fork_violation: str | None = None


def clear_inherited_caches() -> None:
    """Reset every registered module-level cache a forked child inherited.

    Importing the registering modules here (rather than at module
    import) keeps this package import-light; any module the parent
    never imported has no cache to clear.
    """
    from ..core import hierarchy  # noqa: F401  (registers its caches)
    from ..engine import queryproc  # noqa: F401
    from ..spec import parser  # noqa: F401
    from ..timedim import calendar  # noqa: F401

    _forkreg.clear_all()


def _after_in_child() -> None:
    """The at-fork hook: sweep the caches, then (optionally) verify."""
    global _fork_violation
    clear_inherited_caches()
    if sanitize.enabled(sanitize.FORK):
        try:
            sanitize.assert_fork_caches_clear()
        except SanitizerError as exc:
            _fork_violation = str(exc)


def pending_fork_violation() -> str | None:
    """The fork sanitizer's recorded violation, if any (per process)."""
    return _fork_violation


def install_fork_guard() -> None:
    """Arrange for caches to be cleared in every forked child (once)."""
    global _installed
    if _installed:
        return
    if hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_after_in_child)
    _installed = True
