"""Shard-parallel NOW-advance synchronization.

The serial :meth:`~repro.engine.store.SubcubeStore.synchronize` spends
its time *classifying* facts — suspect-region checks and
``_target_cube`` predicate walks — and almost none *moving* them.  So
the sharded path fans the classification out and keeps the mutation
serial (plan-then-apply):

1. the parent journals ``sync_begin_sharded``, publishes the store as
   the fork-inherited payload, and walks the cubes in order; per cube it
   chunks the not-yet-settled facts contiguously into worker tasks;
2. workers return per-fact *verdicts* — region-skip, stay, or a full
   migration payload (target cube, rolled-up coordinates, measures,
   provenance members).  A durable worker first writes its migrations
   into a private write-ahead *segment* (``journal.shard-*.jsonl``,
   committed with a fsynced ``shard_commit`` record) so the plan is on
   disk before the parent mutates anything;
3. the parent applies the migrations serially, in candidate order, and
   finally journals ``sync_commit_sharded`` naming every segment — the
   single commit point recovery trusts.

Bit-for-bit equivalence with the serial path holds because workers only
ever classify facts the parent has not touched since the fork: a fact
mutated by an earlier cube's apply phase is in ``settled`` and is never
handed to a worker.  Untouched facts are identical in parent and child,
classification depends only on the fact's cell and ``now``, and the
apply order (cube order, then candidate order) is exactly the serial
examination order.  On any failure the undo log rolls every staged
migration back, exactly as in the serial path.
"""

from __future__ import annotations

import datetime as _dt
import os
import time
from typing import Any

from ..core.facts import Provenance
from ..engine.durable import Journal
from ..engine.faults import PASSIVE
from ..engine.store import Migration, SubcubeStore, _rollup, _UndoLog
from ..errors import EngineError
from ..obs import trace
from .executor import ShardExecutor
from .telemetry import record_shard_plan

#: Worker verdicts (index-aligned with the task's fact ids).
_SKIP = 0  # suspect-region analysis proves the fact cannot move
_STAY = 1  # examined; target cube is the current cube
_MOVE = 2  # examined; a migration payload was emitted


def _verdict_task(payload: dict, task: tuple) -> tuple:
    """Classify one chunk of one cube's facts against the forked state."""
    seq, cube_index, cube_name, start, fact_ids = task
    store: SubcubeStore = payload["store"]
    now: _dt.date = payload["now"]
    regions = payload["regions"]
    names = payload["names"]
    dimensions = store._template.dimensions
    memo: dict[tuple[str, ...], str] = payload["memo"]
    spans: dict = payload["spans"]
    cube = store._cubes[cube_name]
    mo = cube.mo
    verdicts: list[int] = []
    migrations: list[tuple] = []
    for offset, fact_id in enumerate(fact_ids):
        if (
            regions is not None
            and fact_id not in store._dirty
            and not store._needs_examination(mo, fact_id, regions, spans)
        ):
            verdicts.append(_SKIP)
            continue
        cell_values = mo.direct_cell(fact_id)
        target_name = memo.get(cell_values)
        if target_name is None:
            cell = dict(zip(names, cell_values))
            target_name = store._target_cube(cell, now).name
            memo[cell_values] = target_name
        if target_name == cube_name:
            verdicts.append(_STAY)
            continue
        target = store._cubes[target_name]
        coordinates = {
            name: _rollup(dimensions[name], value, category)
            for name, value, category in zip(
                names, cell_values, target.granularity
            )
        }
        measures = {
            measure: mo.measure_value(fact_id, measure)
            for measure in mo.schema.measure_names
        }
        members = sorted(mo.provenance(fact_id).members)
        verdicts.append(_MOVE)
        migrations.append(
            (start + offset, fact_id, target_name, coordinates, measures,
             members)
        )
    segment = None
    if migrations and payload["journal_dir"] is not None:
        filename = (
            f"journal.shard-{payload['begin_lsn']:012d}-{seq:04d}.jsonl"
        )
        journal = Journal(
            os.path.join(payload["journal_dir"], filename),
            fsync=payload["fsync"],
            faults=payload["faults"],
        )
        try:
            for index, fact_id, target_name, coordinates, measures, members in migrations:
                journal.append(
                    "shard_migrate",
                    {
                        "cube_index": cube_index,
                        "index": index,
                        "fact": fact_id,
                        "from": cube_name,
                        "to": target_name,
                        "coordinates": coordinates,
                        "measures": measures,
                        "members": members,
                    },
                )
            payload["faults"].hit("shard.segment.commit")
            # The segment's commit point: the migrations below it are
            # durable (fsynced) before the parent applies any of them.
            journal.append(
                "shard_commit", {"records": len(migrations)}, sync=True
            )
        finally:
            journal.close()
        segment = (filename, len(migrations))
    return verdicts, migrations, segment


def _apply_shard_migration(
    store: SubcubeStore, migration: Migration, undo: _UndoLog
) -> str:
    """Apply one planned migration (journaling happened in the worker)."""
    source = store._cubes[migration.source]
    target = store._cubes[migration.target]
    undo.record(source, migration.fact_id)
    undo.record(target, target.cell_fact_id(migration.coordinates))
    source.remove(migration.fact_id)
    return target.insert_at_granularity(
        migration.coordinates, migration.measures, migration.provenance
    )


def synchronize_sharded(
    store: SubcubeStore,
    now: _dt.date,
    *,
    executor: ShardExecutor,
    incremental: bool = True,
) -> dict[str, int]:
    """``store.synchronize(now)`` over worker shards (same result)."""
    if store.last_sync is not None and now < store.last_sync:
        raise EngineError(
            f"synchronization time moved backwards ({store.last_sync} -> {now})"
        )
    regions = None
    if incremental and store.last_sync is not None:
        regions = store._suspect_regions(store.last_sync, now)
    mode = "incremental" if regions is not None else "full"
    faults = getattr(store, "_faults", PASSIVE)
    begin_lsn = store._journal_sync_begin_sharded(now, incremental)
    payload: dict[str, Any] = {
        "store": store,
        "now": now,
        "regions": regions,
        "names": store._template.schema.dimension_names,
        "begin_lsn": begin_lsn if begin_lsn is not None else 0,
        "journal_dir": (
            getattr(store, "path", None) if begin_lsn is not None else None
        ),
        "fsync": getattr(store, "_fsync_enabled", False),
        "faults": faults,
        # Per-session scratch: each forked worker mutates its own copy,
        # and both die with the payload (so no cross-run staleness).
        "memo": {},
        "spans": {},
    }
    faults.hit("shard.plan")
    moved: dict[str, int] = {name: 0 for name in store._cubes}
    examined = 0
    skipped = 0
    settled: set[str] = set()
    undo = _UndoLog()
    segments: list[tuple[str, int]] = []
    task_seconds: list[float] = []
    task_sizes: list[int] = []
    started = time.perf_counter()
    with trace.span(
        "sync.sharded", mode=mode, workers=executor.workers
    ) as sync_span:
        try:
            with executor.session(payload) as session:
                seq = 0
                for cube_index, (cube_name, cube) in enumerate(
                    store._cubes.items()
                ):
                    candidates = [
                        fact_id
                        for fact_id in list(cube.mo.facts())
                        if fact_id not in settled
                    ]
                    if not candidates:
                        continue
                    chunks = min(executor.workers, len(candidates))
                    size = -(-len(candidates) // chunks)
                    tasks = []
                    for start in range(0, len(candidates), size):
                        tasks.append(
                            (
                                seq,
                                cube_index,
                                cube_name,
                                start,
                                tuple(candidates[start : start + size]),
                            )
                        )
                        seq += 1
                    results, seconds = session.run(_verdict_task, tasks)
                    task_seconds.extend(seconds)
                    task_sizes.extend(len(task[4]) for task in tasks)
                    # Apply in candidate order: tasks are contiguous
                    # chunks, so task order x offset order is exactly
                    # the serial examination order for this cube.
                    for verdicts, migrations, segment in results:
                        if segment is not None:
                            segments.append(segment)
                        queue = iter(migrations)
                        for verdict in verdicts:
                            if verdict == _SKIP:
                                skipped += 1
                                continue
                            examined += 1
                            if verdict == _STAY:
                                continue
                            (_, fact_id, target_name, coordinates,
                             measures, members) = next(queue)
                            faults.hit("shard.apply")
                            settled.add(
                                _apply_shard_migration(
                                    store,
                                    Migration(
                                        fact_id,
                                        cube_name,
                                        target_name,
                                        coordinates,
                                        measures,
                                        Provenance(frozenset(members)),
                                    ),
                                    undo,
                                )
                            )
                            moved[target_name] += 1
            store._journal_sync_commit_sharded(now, moved, examined, segments)
        except BaseException as exc:
            # Same all-or-nothing contract as the serial path: roll every
            # staged migration back, then let the journal record the
            # abort (and drop the now-meaningless segments).
            undo.rollback(store)
            store._journal_sync_failed_sharded(exc, segments)
            raise
        store.last_sync = now
        store._dirty.clear()
        store._invalidate_query_plans(moved, now)
        sync_span.set_attribute("examined", examined)
        sync_span.set_attribute("migrated", sum(moved.values()))
        sync_span.set_attribute("skipped", skipped)
    store._record_sync(
        f"sharded-{mode}",
        examined,
        sum(moved.values()),
        skipped,
        len(undo),
        time.perf_counter() - started,
    )
    mean = sum(task_sizes) / len(task_sizes) if task_sizes else 0.0
    record_shard_plan(
        "sync",
        workers=executor.workers,
        shards=len(task_sizes),
        facts_routed=sum(task_sizes),
        pruned_actions=0,
        skew=(max(task_sizes) / mean) if mean > 0 else 1.0,
        task_seconds=task_seconds,
        registry=store.metrics,
    )
    return moved
