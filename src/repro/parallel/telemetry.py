"""Shard-execution metrics (catalogued in docs/observability.md).

One :func:`record_shard_plan` call per sharded reduce or synchronize,
labelled ``op="reduce"`` / ``op="sync"``: shard and worker counts, facts
routed, the action evaluations pruned by signature routing, the plan's
cost skew, and every task's wall time.
"""

from __future__ import annotations

from typing import Sequence

from ..obs import metrics as obs_metrics

SHARD_WORKERS = "repro_shard_workers"
SHARD_PLAN_SHARDS = "repro_shard_plan_shards"
SHARD_FACTS_ROUTED = "repro_shard_facts_routed_total"
SHARD_PRUNED_ACTIONS = "repro_shard_pruned_actions_total"
SHARD_COST_SKEW = "repro_shard_cost_skew"
SHARD_WORKER_SECONDS = "repro_shard_worker_seconds"


def record_shard_plan(
    op: str,
    *,
    workers: int,
    shards: int,
    facts_routed: int,
    pruned_actions: int,
    skew: float,
    task_seconds: Sequence[float] = (),
    registry: obs_metrics.MetricsRegistry | None = None,
) -> None:
    """Record one sharded execution into *registry* (default: active)."""
    metrics = registry if registry is not None else obs_metrics.get_registry()
    labels = {"op": op}
    metrics.gauge(
        SHARD_WORKERS, labels, help="Workers the last sharded run used."
    ).set(workers)
    metrics.gauge(
        SHARD_PLAN_SHARDS, labels, help="Shards in the last executed plan."
    ).set(shards)
    metrics.counter(
        SHARD_FACTS_ROUTED,
        labels,
        help="Facts routed to shards across sharded runs.",
    ).inc(facts_routed)
    metrics.counter(
        SHARD_PRUNED_ACTIONS,
        labels,
        help="Per-shard action evaluations removed by signature routing.",
    ).inc(pruned_actions)
    metrics.gauge(
        SHARD_COST_SKEW,
        labels,
        help="max/mean shard cost weight of the last plan (1.0 = balanced).",
    ).set(skew)
    histogram = metrics.histogram(
        SHARD_WORKER_SECONDS,
        labels,
        buckets=obs_metrics.TIME_BUCKETS,
        help="Per-task worker wall time in seconds.",
    )
    for seconds in task_seconds:
        histogram.observe(seconds)
