"""The shard executor: process fan-out with a deterministic serial twin.

Workers are forked (``multiprocessing`` ``fork`` start method), so the
task payload — the MO or store, bound actions, evaluation time — is
inherited by reference instead of pickled: the parent publishes it in
the module-global :data:`_PAYLOAD` immediately before creating the pool,
and workers read it back.  Only the per-task descriptors (small tuples
of ints and strings) and the results cross the pipe.

Execution mode:

* ``"serial"`` — run every task in-process, in task order;
* ``"process"`` — always use a ``ProcessPoolExecutor``;
* ``"auto"`` (default) — processes when there is more than one worker,
  more than one CPU, and ``fork`` is available; serial otherwise.

Both modes run tasks through the same :func:`_invoke` wrapper, which
converts exceptions into picklable markers — so error semantics (which
exception type, raised for the earliest failing task) are identical in
both modes, and the shard plans themselves never depend on the mode:
serial execution of a 4-worker plan produces bit-for-bit the same
output as process execution of the same plan.
"""

from __future__ import annotations

import importlib
import multiprocessing as _mp
import os
import time
from concurrent import futures as _futures
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

from ..engine.faults import InjectedFault
from ..errors import ReproError, SanitizerError
from .forksafe import install_fork_guard, pending_fork_violation

#: The fork-inherited task payload (set only inside an active session).
_PAYLOAD: Any = None

MODES = ("auto", "serial", "process")


def resolve_workers(workers: int | None = None) -> int:
    """The effective worker count: argument, else ``REPRO_WORKERS``, else 1."""
    if workers is None:
        raw = os.environ.get("REPRO_WORKERS", "").strip()
        workers = int(raw) if raw else 1
    return max(1, int(workers))


def _invoke(fn: Callable[[Any, Any], Any], task: Any) -> tuple:
    """Run one task against the inherited payload, marker-encoding errors."""
    started = time.perf_counter()
    try:
        violation = pending_fork_violation()
        if violation is not None:
            # The fork sanitizer (REPRO_SANITIZE=fork) found a cache that
            # survived the fork-time sweep; at-fork hooks cannot raise,
            # so the worker surfaces it at its first task instead.
            raise SanitizerError(violation)
        result = fn(_PAYLOAD, task)
    except InjectedFault as fault:
        return (
            "fault",
            (fault.failpoint, fault.hit),
            time.perf_counter() - started,
        )
    except Exception as exc:
        cls = type(exc)
        return (
            "exc",
            (cls.__module__, cls.__qualname__, str(exc)),
            time.perf_counter() - started,
        )
    return ("ok", result, time.perf_counter() - started)


def _reconstruct(kind: str, data: tuple) -> BaseException:
    if kind == "fault":
        return InjectedFault(*data)
    module_name, qualname, message = data
    try:
        obj: Any = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
        exc = obj(message)
        if isinstance(exc, BaseException):
            return exc
    except Exception:
        pass
    return ReproError(f"worker failed: {module_name}.{qualname}: {message}")


class _Session:
    """One executor session: a fixed payload plus a task runner."""

    def run(
        self, fn: Callable[[Any, Any], Any], tasks: Sequence[Any]
    ) -> tuple[list[Any], list[float]]:
        """Run *tasks*, returning (results, per-task seconds) in order.

        If any task failed, the earliest failing task's exception is
        reconstructed and raised — deterministic regardless of which
        worker finished first.
        """
        outcomes = self._outcomes(fn, tasks)
        seconds = [outcome[2] for outcome in outcomes]
        for kind, data, _ in outcomes:
            if kind != "ok":
                raise _reconstruct(kind, data)
        return [outcome[1] for outcome in outcomes], seconds

    def _outcomes(self, fn, tasks) -> list[tuple]:
        raise NotImplementedError


class _SerialSession(_Session):
    def _outcomes(self, fn, tasks) -> list[tuple]:
        return [_invoke(fn, task) for task in tasks]


class _ProcessSession(_Session):
    def __init__(self, pool: _futures.ProcessPoolExecutor) -> None:
        self._pool = pool

    def _outcomes(self, fn, tasks) -> list[tuple]:
        handles = [self._pool.submit(_invoke, fn, task) for task in tasks]
        return [handle.result() for handle in handles]


class ShardExecutor:
    """Fan shard tasks out over worker processes (or run them inline)."""

    def __init__(self, workers: int | None = None, mode: str = "auto") -> None:
        if mode not in MODES:
            raise ReproError(
                f"unknown executor mode {mode!r}; expected one of {MODES}"
            )
        self.workers = resolve_workers(workers)
        self.mode = mode

    @property
    def uses_processes(self) -> bool:
        if self.mode == "serial":
            return False
        if self.mode == "process":
            return True
        return (
            self.workers > 1
            and (os.cpu_count() or 1) > 1
            and "fork" in _mp.get_all_start_methods()
        )

    @contextmanager
    def session(self, payload: Any) -> Iterator[_Session]:
        """Publish *payload* and yield a task runner bound to it.

        The payload global is set before the pool forks, so worker
        processes inherit it; it is cleared when the session ends.
        """
        global _PAYLOAD
        install_fork_guard()
        _PAYLOAD = payload
        try:
            if self.uses_processes:
                context = _mp.get_context("fork")
                with _futures.ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                ) as pool:
                    yield _ProcessSession(pool)
            else:
                yield _SerialSession()
        finally:
            _PAYLOAD = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ShardExecutor(workers={self.workers}, mode={self.mode!r})"
