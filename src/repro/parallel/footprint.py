"""Per-action footprints and fact-to-signature routing.

A *footprint* is the grounded, evaluation-time-exact over-approximation
of the bottom cells one DNF disjunct of an action predicate can admit:
the disjunct's exact day window (:func:`~repro.spec.ranges.window_at`)
on the time dimension times its grounded bottom region
(:func:`~repro.spec.ranges.bottom_region`) per non-time dimension.
Both components are *sound* over-approximations — ``in`` atoms
contribute their convex hull, ``!=`` and unmodelled order atoms are
ignored — so a fact outside a disjunct's footprint provably does not
satisfy that disjunct at the evaluation time.

The :class:`SignatureRouter` turns footprints into per-fact *action
signatures*: an integer bitmask with bit ``a`` set iff action ``a``
*might* admit the fact.  Facts with disjoint signatures can never merge
into the same target cell through those actions, and an action absent
from a fact's signature admits zero facts of any shard built from that
signature — which is what lets the shard planner prune action lists per
shard without changing results or admission telemetry.

Values the grounding cannot decide (the top value, values above the
bottom category, non-calendar time values) route to *every* action:
over-routing costs speed, never correctness.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.dimension import ALL_VALUE, Dimension
from ..core.hierarchy import TOP
from ..core.mo import MultidimensionalObject
from ..errors import ReproError
from ..spec.action import Action, is_time_dimension_type
from ..spec.ranges import bottom_region, profiles_of, window_at
from ..timedim.calendar import first_day, last_day


@dataclass(frozen=True)
class DisjunctFootprint:
    """One disjunct's grounded admissible region at a fixed time."""

    action_index: int
    #: Exact day-ordinal interval on the time dimension (``None`` =
    #: unconstrained); never empty — empty disjuncts are dropped.
    window: tuple[float, float] | None
    #: Bottom-category values per non-time dimension (``None`` =
    #: unconstrained).
    regions: Mapping[str, frozenset[str]]


def action_footprints(
    actions: Sequence[Action],
    dimensions: Mapping[str, Dimension],
    now: _dt.date,
) -> list[DisjunctFootprint]:
    """Ground every satisfiable disjunct of every action at *now*."""
    footprints: list[DisjunctFootprint] = []
    for index, action in enumerate(actions):
        for profile in profiles_of(action):
            window = window_at(profile, now)
            if window is not None and window[0] > window[1]:
                continue  # provably admits nothing at this time
            regions: dict[str, frozenset[str]] = {}
            empty = False
            for name in action.schema.dimension_names:
                if is_time_dimension_type(action.schema.dimension_type(name)):
                    continue
                region = bottom_region(profile, dimensions[name])
                if region is None:
                    continue
                if not region:
                    empty = True
                    break
                regions[name] = region
            if empty:
                continue
            footprints.append(DisjunctFootprint(index, window, regions))
    return footprints


def _value_day_span(
    dimension: Dimension, value: str
) -> tuple[float, float] | None:
    """The day extent of a time-dimension value, ``None`` if unbounded."""
    if value == ALL_VALUE:
        return None
    try:
        category = dimension.category_of(value)
    except ReproError:
        return None
    if category == TOP:
        return None
    try:
        return (
            float(first_day(category, value).toordinal()),
            float(last_day(category, value).toordinal()),
        )
    except (ReproError, ValueError):
        return None


class SignatureRouter:
    """Route facts to action-signature bitmasks via per-value verdicts.

    Verdicts are computed per *distinct direct value* per dimension and
    combined per fact with one AND over dimensions (at disjunct
    granularity, so two disjuncts of one action never cross-pollinate a
    verdict) followed by a memoized disjunct-mask → action-mask fold.
    """

    def __init__(
        self,
        mo: MultidimensionalObject,
        actions: Sequence[Action],
        now: _dt.date,
    ) -> None:
        self._mo = mo
        self._names = mo.schema.dimension_names
        self._dimensions = mo.dimensions
        self._footprints = action_footprints(actions, mo.dimensions, now)
        schema = actions[0].schema if actions else mo.schema
        self._time_dims = frozenset(
            name
            for name in self._names
            if is_time_dimension_type(schema.dimension_type(name))
        )
        self._all_disjuncts = (1 << len(self._footprints)) - 1
        # dimension -> value -> disjunct bitmask, filled lazily.
        self._value_masks: dict[str, dict[str, int]] = {
            name: {} for name in self._names
        }
        self._action_mask_of: dict[int, int] = {}

    def _value_mask(self, name: str, value: str) -> int:
        cached = self._value_masks[name].get(value)
        if cached is not None:
            return cached
        mask = 0
        if name in self._time_dims:
            span = _value_day_span(self._dimensions[name], value)
            for bit, footprint in enumerate(self._footprints):
                window = footprint.window
                if (
                    window is None
                    or span is None
                    or (span[0] <= window[1] and window[0] <= span[1])
                ):
                    mask |= 1 << bit
        else:
            dimension = self._dimensions[name]
            try:
                bottom = dimension.category_of(value) == dimension.bottom_category
            except ReproError:
                bottom = False
            for bit, footprint in enumerate(self._footprints):
                region = footprint.regions.get(name)
                if region is None or not bottom or value in region:
                    mask |= 1 << bit
        self._value_masks[name][value] = mask
        return mask

    def action_signature(self, fact_id: str) -> int:
        """Bitmask of actions that might admit *fact_id*."""
        disjuncts = self._all_disjuncts
        for name in self._names:
            if not disjuncts:
                break
            disjuncts &= self._value_mask(
                name, self._mo.direct_value(fact_id, name)
            )
        actions = self._action_mask_of.get(disjuncts)
        if actions is None:
            actions = 0
            remaining = disjuncts
            while remaining:
                bit = (remaining & -remaining).bit_length() - 1
                actions |= 1 << self._footprints[bit].action_index
                remaining &= remaining - 1
            self._action_mask_of[disjuncts] = actions
        return actions
