"""Shard-parallel reduction, bit-for-bit equal to the serial backends.

Workers do the expensive half of Definition 2 — computing each fact's
target cell — and return only the resulting *grouping* (target cell →
member fact ids, in shard-local serial order) plus per-action admitted
counts.  The parent merges the groupings back into the single grouping
the serial reducer would have produced (members re-sorted by serial
fact index, groups ordered by first-encounter) and materializes the
output once with
:func:`~repro.reduction.reducer.materialize_groups` — so aggregation
order, fact ids, provenance, and fact-iteration order are the serial
ones *by construction*, regardless of worker count or execution mode.

Per-shard action pruning is sound because a pruned action's footprint
excludes every fact of the shard (see :mod:`.footprint`): it neither
changes any fact's target cell nor contributes admitted counts.
"""

from __future__ import annotations

import datetime as _dt
import time
from typing import Any, Iterable

from ..core.mo import MultidimensionalObject
from ..engine.faults import PASSIVE, FaultInjector
from ..errors import ReproError
from ..obs import trace
from ..reduction import telemetry
from ..reduction.compiled import compile_specification, _compiled_groups
from ..reduction.columnar import reduction_groups_columnar
from ..reduction.reducer import (
    BACKENDS,
    COLUMNAR_THRESHOLD,
    _interpretive_groups,
    materialize_groups,
)
from ..spec.action import Action
from ..spec.specification import ReductionSpecification
from .executor import ShardExecutor
from .partition import plan_reduction_shards
from .telemetry import record_shard_plan


def _group_task(payload: dict, task: int) -> tuple[list[tuple], list[int]]:
    """Worker: one shard's grouping plus full-index admitted counts."""
    shard = payload["plan"].shards[task]
    actions: list[Action] = payload["actions"]
    if not shard.fact_ids:
        return [], [0] * len(actions)
    sub = payload["mo"].restrict_to_facts(shard.fact_ids)
    live = [actions[index] for index in shard.action_indices]
    backend = payload["backend"]
    if backend == "columnar":
        groups, counts = reduction_groups_columnar(sub, live, payload["now"])
    elif backend == "compiled":
        compiled = compile_specification(sub, live, payload["now"])
        groups, counts = _compiled_groups(sub, compiled)
    else:
        groups, counts = _interpretive_groups(sub, live, payload["now"])
    full_counts = [0] * len(actions)
    for index, count in zip(shard.action_indices, counts):
        full_counts[index] = count
    return list(groups.items()), full_counts


def reduce_mo_sharded(
    mo: MultidimensionalObject,
    specification: ReductionSpecification | Iterable[Action],
    now: _dt.date,
    *,
    executor: ShardExecutor,
    backend: str = "auto",
    faults: FaultInjector = PASSIVE,
) -> MultidimensionalObject:
    """``reduce_mo`` over cost-balanced shards (same result, any mode)."""
    if backend not in BACKENDS:
        raise ReproError(
            f"unknown reducer backend {backend!r}; expected one of {BACKENDS}"
        )
    actions = (
        list(specification.actions)
        if isinstance(specification, ReductionSpecification)
        else list(specification)
    )
    resolved = backend
    if resolved == "auto":
        resolved = (
            "columnar" if mo.n_facts >= COLUMNAR_THRESHOLD else "interpretive"
        )
    start = time.perf_counter()
    with trace.span(
        "reduce.sharded", backend=resolved, workers=executor.workers
    ) as span:
        plan = plan_reduction_shards(
            mo,
            actions,
            now,
            executor.workers,
            certificates=_plan_certificates(specification),
        )
        faults.hit("shard.plan")
        payload = {
            "mo": mo,
            "actions": actions,
            "now": now,
            "plan": plan,
            "backend": resolved,
        }
        with executor.session(payload) as session:
            results, task_seconds = session.run(
                _group_task, list(range(len(plan.shards)))
            )
        serial_index = {
            fact_id: index for index, fact_id in enumerate(mo.facts())
        }
        merged: dict[tuple[str, ...], list[str]] = {}
        crossing: set[tuple[str, ...]] = set()
        admitted = [0] * len(actions)
        for groups, counts in results:
            for index, count in enumerate(counts):
                admitted[index] += count
            for cell, members in groups:
                existing = merged.get(cell)
                if existing is None:
                    merged[cell] = members
                else:
                    existing.extend(members)
                    crossing.add(cell)
        for cell in crossing:
            merged[cell].sort(key=serial_index.__getitem__)
        ordered = dict(
            sorted(
                merged.items(), key=lambda item: serial_index[item[1][0]]
            )
        )
        reduced = materialize_groups(mo, ordered)
        span.set_attribute("facts_in", mo.n_facts)
        span.set_attribute("facts_out", reduced.n_facts)
    telemetry.record_run(
        f"sharded-{resolved}",
        mo.n_facts,
        reduced.n_facts,
        time.perf_counter() - start,
    )
    telemetry.record_admitted(actions, admitted)
    record_shard_plan(
        "reduce",
        workers=executor.workers,
        shards=len(plan.shards),
        facts_routed=plan.n_facts,
        pruned_actions=plan.pruned_actions,
        skew=plan.skew,
        task_seconds=task_seconds,
    )
    return reduced


def _plan_certificates(specification: Any) -> dict | None:
    """Independence certificates for the plan metadata (best effort)."""
    if not isinstance(specification, ReductionSpecification):
        return None
    try:
        from ..analysis.independence import independence_report
        from ..engine.disjoint import disjoint_actions

        cubes = disjoint_actions(specification)
        report = independence_report(
            cubes,
            {action.name: action for action in specification.actions},
            specification.dimensions,
            specification.prover_config,
        )
        return report.to_dict()
    except Exception:
        return None
