"""Cost-balanced shard planning over action signatures.

Facts are first grouped by action signature (see :mod:`.footprint`):
facts with the same signature are interchangeable routing-wise, and
facts with signature 0 can only merge with duplicates of their own
bottom cell.  Each signature group is weighted by
``n_facts * (0.5 + sum of member-action weights)`` where an action's
weight is its static selectivity from
:func:`~repro.analysis.cost.estimate_costs` (1.0 when ungroundable) —
the 0.5 floor charges the per-fact routing/merge cost even for
zero-action facts.  Groups larger than ~1.25x the per-worker target are
split *contiguously in serial fact order* — for time-correlated loads
that is a time-range split, pygrametl's splitpoint partitioning in our
setting — and the resulting units are packed onto shards with the LPT
(longest processing time first) heuristic.

Shard fact lists are kept in serial fact order, which is what lets the
merge rebuild the serial result bit-for-bit.  The
:class:`~repro.analysis.independence.IndependenceReport` is attached as
certificate metadata; correctness never depends on it (the merge is
correct for any partition), it documents *why* the plan's shards are
expected not to contend.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..analysis.cost import estimate_costs
from ..core.mo import MultidimensionalObject
from ..spec.action import Action
from .footprint import SignatureRouter

#: Units heavier than this multiple of the per-shard target are split.
OVERSIZE_FACTOR = 1.25


@dataclass(frozen=True)
class Shard:
    """One unit of worker work: a fact slice plus its live actions."""

    index: int
    #: Fact ids in serial (MO iteration) order.
    fact_ids: tuple[str, ...]
    #: Indices into the specification's action list that any of this
    #: shard's facts might admit; all other actions are pruned.
    action_indices: tuple[int, ...]
    weight: float


@dataclass
class ShardPlan:
    """A complete partition of one MO's facts into worker shards."""

    shards: tuple[Shard, ...]
    workers: int
    n_actions: int
    n_facts: int
    #: max/mean shard weight (1.0 = perfectly balanced).
    skew: float
    #: Distinct action signatures observed while routing.
    signatures: int
    #: Independence certificates backing the plan, when available.
    certificates: dict | None = None
    metadata: dict = field(default_factory=dict)

    @property
    def pruned_actions(self) -> int:
        """Total action evaluations the per-shard pruning removed."""
        return sum(
            self.n_actions - len(shard.action_indices)
            for shard in self.shards
            if shard.fact_ids
        )


def action_weights(
    actions: Sequence[Action],
    dimensions: Mapping | None,
) -> list[float]:
    """Per-action routing weights from static selectivity estimates."""
    weights = [1.0] * len(actions)
    if not actions or dimensions is None:
        return weights
    try:
        costs = estimate_costs(actions, dimensions)
    except Exception:
        return weights
    for index, cost in enumerate(costs):
        if cost.selectivity is not None:
            weights[index] = cost.selectivity
    return weights


def plan_reduction_shards(
    mo: MultidimensionalObject,
    actions: Sequence[Action],
    now: _dt.date,
    workers: int,
    *,
    certificates: dict | None = None,
) -> ShardPlan:
    """Partition *mo*'s facts into *workers* cost-balanced shards.

    The same plan is built regardless of execution mode, so serial and
    process execution see identical shards (and identical outputs).
    """
    workers = max(1, int(workers))
    router = SignatureRouter(mo, actions, now)
    groups: dict[int, list[str]] = {}
    n_facts = 0
    for fact_id in mo.facts():
        n_facts += 1
        groups.setdefault(router.action_signature(fact_id), []).append(
            fact_id
        )

    weights = action_weights(actions, mo.dimensions)
    units: list[tuple[float, int, list[str]]] = []  # (weight, sig, facts)
    for signature, fact_ids in groups.items():
        per_fact = 0.5
        remaining = signature
        while remaining:
            bit = (remaining & -remaining).bit_length() - 1
            per_fact += weights[bit]
            remaining &= remaining - 1
        units.append((len(fact_ids) * per_fact, signature, fact_ids))

    total = sum(weight for weight, _, _ in units)
    target = total / workers if workers else total
    if target > 0:
        split: list[tuple[float, int, list[str]]] = []
        for weight, signature, fact_ids in units:
            if weight <= OVERSIZE_FACTOR * target or len(fact_ids) < 2:
                split.append((weight, signature, fact_ids))
                continue
            # Contiguous serial-order (== time-range for time-ordered
            # loads) split into ceil(weight/target) near-equal chunks.
            pieces = min(len(fact_ids), max(2, -int(-weight // target)))
            size = -(-len(fact_ids) // pieces)
            for start in range(0, len(fact_ids), size):
                chunk = fact_ids[start : start + size]
                split.append((weight * len(chunk) / len(fact_ids), signature, chunk))
        units = split

    # LPT packing: heaviest unit first onto the lightest shard.
    loads = [0.0] * workers
    assigned: list[list[tuple[float, int, list[str]]]] = [
        [] for _ in range(workers)
    ]
    for unit in sorted(units, key=lambda u: (-u[0], u[2][0] if u[2] else "")):
        shard_index = min(range(workers), key=lambda i: loads[i])
        loads[shard_index] += unit[0]
        assigned[shard_index].append(unit)

    serial_index = {fact_id: i for i, fact_id in enumerate(mo.facts())}
    shards: list[Shard] = []
    for index in range(workers):
        fact_ids: list[str] = []
        signature = 0
        for _, unit_signature, unit_facts in assigned[index]:
            fact_ids.extend(unit_facts)
            signature |= unit_signature
        fact_ids.sort(key=serial_index.__getitem__)
        action_indices = []
        remaining = signature
        while remaining:
            bit = (remaining & -remaining).bit_length() - 1
            action_indices.append(bit)
            remaining &= remaining - 1
        shards.append(
            Shard(index, tuple(fact_ids), tuple(action_indices), loads[index])
        )

    mean = total / workers if workers else 0.0
    skew = (max(loads) / mean) if mean > 0 else 1.0
    return ShardPlan(
        shards=tuple(shards),
        workers=workers,
        n_actions=len(actions),
        n_facts=n_facts,
        skew=skew,
        signatures=len(groups),
        certificates=certificates,
    )
