"""Diagnostic reporters: human text, machine JSON, and SARIF 2.1.0.

The SARIF rendering follows the 2.1.0 schema: one run, the full rule
catalog under ``tool.driver.rules`` (so viewers can show rule metadata
for every result), and per-result physical locations with 1-based
line/column regions whose ``endColumn`` is exclusive.
"""

from __future__ import annotations

import json

from .diagnostics import Diagnostic, LintResult
from .rules import Rule

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

TEXT = "text"
JSON = "json"
SARIF = "sarif"

FORMATS = (TEXT, JSON, SARIF)


def render_text(result: LintResult) -> str:
    """The human-facing report: one finding per line, then a summary."""
    lines = [diagnostic.format() for diagnostic in result]
    lines.append(result.summary())
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """A stable machine-readable report for tooling and tests."""
    payload = {
        "diagnostics": [d.to_dict() for d in result],
        "summary": {
            "errors": len(result.errors),
            "warnings": len(result.warnings),
            "infos": len(result.infos),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_result(diagnostic: Diagnostic, rule_index: dict[str, int]) -> dict:
    out: dict = {
        "ruleId": diagnostic.code,
        "level": diagnostic.severity.sarif_level,
        "message": {"text": diagnostic.message},
    }
    if diagnostic.code in rule_index:
        out["ruleIndex"] = rule_index[diagnostic.code]
    if diagnostic.file is not None:
        physical: dict = {
            "artifactLocation": {"uri": diagnostic.file}
        }
        if diagnostic.region is not None:
            physical["region"] = {
                "startLine": diagnostic.region.start_line,
                "startColumn": diagnostic.region.start_column,
                "endLine": diagnostic.region.end_line,
                "endColumn": diagnostic.region.end_column,
            }
        out["locations"] = [{"physicalLocation": physical}]
    if diagnostic.action is not None or diagnostic.hint is not None:
        properties: dict = {}
        if diagnostic.action is not None:
            properties["action"] = diagnostic.action
        if diagnostic.hint is not None:
            properties["hint"] = diagnostic.hint
        out["properties"] = properties
    return out


def _default_catalog() -> "dict[str, Rule]":
    from .rules import RULES

    return RULES


def sarif_log(
    result: LintResult,
    *,
    tool_name: str = "repro-lint",
    catalog: "dict[str, Rule] | None" = None,
    information_uri: str = "https://example.invalid/repro/docs/linting",
) -> dict:
    """The SARIF 2.1.0 log document as a plain dict.

    The defaults render the specification lint catalog; the self-check
    engine (:mod:`repro.devlint`) reuses the exact same rendering with
    its own *tool_name* and ``RL`` rule *catalog*.
    """
    from .. import __version__

    if catalog is None:
        catalog = _default_catalog()
    rules = []
    rule_index: dict[str, int] = {}
    for index, rule in enumerate(catalog.values()):
        rule_index[rule.code] = index
        entry = {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "help": {"text": f"Reference: {rule.paper}"},
            "defaultConfiguration": {
                "level": rule.severity.sarif_level
            },
        }
        rules.append(entry)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "version": __version__,
                        "informationUri": information_uri,
                        "rules": rules,
                    }
                },
                "results": [
                    _sarif_result(d, rule_index) for d in result
                ],
            }
        ],
    }


def render_sarif(result: LintResult, **sarif_options: object) -> str:
    return json.dumps(
        sarif_log(result, **sarif_options),  # type: ignore[arg-type]
        indent=2,
        sort_keys=True,
    )


def render(result: LintResult, format: str, **sarif_options: object) -> str:
    """Dispatch on a ``--format`` value (``text``/``json``/``sarif``).

    ``sarif_options`` (``tool_name``/``catalog``/``information_uri``)
    are forwarded to :func:`sarif_log` and ignored by the other formats.
    """
    if format == TEXT:
        return render_text(result)
    if format == JSON:
        return render_json(result)
    if format == SARIF:
        return render_sarif(result, **sarif_options)
    raise ValueError(f"unknown report format {format!r}")
