"""The diagnostic model of the specification lint engine.

A :class:`Diagnostic` is one finding of the static analyzer: a stable rule
code (``SDR...``), a severity, a human message, and — whenever the finding
can be traced to specification text — a file-relative :class:`Region` with
1-based line/column coordinates.  :class:`LintResult` aggregates the
findings of one run and supports the ``--select``/``--ignore`` code
filters of the CLI.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Iterable, Iterator


class Severity(enum.Enum):
    """Diagnostic severity, ordered ``ERROR > WARNING > INFO``."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def sarif_level(self) -> str:
        """The SARIF 2.1.0 ``level`` value for this severity."""
        return "note" if self is Severity.INFO else self.value

    @property
    def rank(self) -> int:
        return {"error": 0, "warning": 1, "info": 2}[self.value]


@dataclass(frozen=True)
class Region:
    """A 1-based source region; ``end_column`` is exclusive (SARIF style)."""

    start_line: int
    start_column: int
    end_line: int
    end_column: int

    def __str__(self) -> str:
        return f"{self.start_line}:{self.start_column}"


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding with its stable code, severity, and location."""

    code: str
    severity: Severity
    message: str
    file: str | None = None
    region: Region | None = None
    action: str | None = None
    hint: str | None = None

    def format(self) -> str:
        """``file:line:col: severity[CODE]: message`` (human text form)."""
        where = self.file or "<spec>"
        if self.region is not None:
            where = f"{where}:{self.region}"
        text = f"{where}: {self.severity.value}[{self.code}]: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def sort_key(self) -> tuple:
        region = self.region or Region(0, 0, 0, 0)
        return (
            self.file or "",
            region.start_line,
            region.start_column,
            self.severity.rank,
            self.code,
        )

    def to_dict(self) -> dict:
        """A JSON-serializable rendering (used by the JSON reporter)."""
        out: dict = {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
        }
        if self.file is not None:
            out["file"] = self.file
        if self.region is not None:
            out["region"] = {
                "start_line": self.region.start_line,
                "start_column": self.region.start_column,
                "end_line": self.region.end_line,
                "end_column": self.region.end_column,
            }
        if self.action is not None:
            out["action"] = self.action
        if self.hint is not None:
            out["hint"] = self.hint
        return out


def _parse_codes(codes: Iterable[str] | str | None) -> set[str] | None:
    """Normalize a code filter: strings may be comma-separated prefixes."""
    if codes is None:
        return None
    if isinstance(codes, str):
        codes = [codes]
    out: set[str] = set()
    for chunk in codes:
        out.update(c.strip() for c in chunk.split(",") if c.strip())
    return out or None


def _matches(code: str, patterns: set[str]) -> bool:
    """Prefix matching, so ``--select SDR1`` selects the whole family."""
    return any(code.startswith(p) for p in patterns)


@dataclass(frozen=True)
class LintResult:
    """All diagnostics produced by one lint run, sorted by location."""

    diagnostics: tuple[Diagnostic, ...]

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.INFO)

    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    def codes(self) -> set[str]:
        return {d.code for d in self.diagnostics}

    def filter(
        self,
        select: Iterable[str] | str | None = None,
        ignore: Iterable[str] | str | None = None,
    ) -> "LintResult":
        """Keep only selected codes, then drop ignored ones."""
        selected = _parse_codes(select)
        ignored = _parse_codes(ignore)
        kept = self.diagnostics
        if selected is not None:
            kept = tuple(d for d in kept if _matches(d.code, selected))
        if ignored is not None:
            kept = tuple(d for d in kept if not _matches(d.code, ignored))
        return replace(self, diagnostics=kept)

    def summary(self) -> str:
        parts = [
            f"{len(self.errors)} error(s)",
            f"{len(self.warnings)} warning(s)",
            f"{len(self.infos)} info(s)",
        ]
        return ", ".join(parts)

    @staticmethod
    def of(diagnostics: Iterable[Diagnostic]) -> "LintResult":
        return LintResult(tuple(sorted(diagnostics, key=Diagnostic.sort_key)))
