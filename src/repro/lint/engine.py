"""The lint driver: parse, bind, and run the rule checkers.

The engine accepts either specification *source text* (the one-action-
per-line format of :func:`repro.io.load_specification`) or already-bound
objects (:class:`repro.spec.specification.ReductionSpecification` /
:class:`repro.spec.action.Action` lists).  Source input gets the full
front-end treatment — syntax, name resolution, Clist shape, term binding
(``SDR0xx``) — with diagnostics anchored to 1-based line/column regions
via the spans the parser attaches to every AST node.  Both input kinds
then run the semantic checkers of :mod:`repro.lint.rules` (``SDR1xx``).

Because the ``SDR102``/``SDR103`` checkers call the very same
:func:`repro.checks.noncrossing.check_noncrossing` and
:func:`repro.checks.growing.check_growing` used by the insert-time gates
of ``ReductionSpecification``, the lint verdict on the two soundness
conditions cannot diverge from the enforcement path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from ..checks.prover import ProverConfig
from ..core.dimension import Dimension
from ..core.schema import FactSchema
from ..errors import ReproError, SpecSyntaxError
from ..spec.action import Action, bind_atom
from ..spec.ast import ActionSyntax, SourceSpan, union_spans
from ..spec.parser import parse_action
from ..spec.ranges import ConjunctProfile, profiles_of
from .diagnostics import Diagnostic, LintResult, Region, Severity
from .rules import CHECKERS, RULES, lint_document_measures

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..spec.specification import ReductionSpecification


@dataclass
class SpecEntry:
    """One action of the linted specification, with its provenance."""

    index: int
    source: str | None
    file: str | None = None
    line: int = 1
    column: int = 1  # 1-based column where the action source begins
    declared_name: str | None = None
    name_column: int | None = None
    syntax: ActionSyntax | None = None
    action: Action | None = None
    profiles: tuple[ConjunctProfile, ...] = ()

    @property
    def name(self) -> str | None:
        """The effective action name (auto-generated once bound)."""
        if self.action is not None:
            return self.action.name
        return self.declared_name


@dataclass
class LintContext:
    """Everything the semantic checkers may consult."""

    schema: FactSchema
    entries: list[SpecEntry]
    dimensions: Mapping[str, Dimension] | None = None
    prover: ProverConfig = field(default_factory=ProverConfig)

    @property
    def bound(self) -> list[SpecEntry]:
        """Entries whose action bound and whose profiles compiled."""
        return [e for e in self.entries if e.action is not None]

    def entry_for(self, name: str | None) -> SpecEntry | None:
        for entry in self.entries:
            if name is not None and entry.name == name:
                return entry
        return None

    def region(
        self, entry: SpecEntry | None, span: SourceSpan | None = None
    ) -> Region | None:
        """Map an in-source span of *entry* to file line/column."""
        if entry is None or entry.source is None:
            return None
        if span is None:
            span = SourceSpan(0, len(entry.source))
        return Region(
            entry.line,
            entry.column + span.start,
            entry.line,
            entry.column + span.end,
        )

    def diagnostic(
        self,
        code: str,
        message: str,
        *,
        entry: SpecEntry | None = None,
        span: SourceSpan | None = None,
        severity: Severity | None = None,
        hint: str | None = None,
        file: str | None = None,
        region: Region | None = None,
    ) -> Diagnostic:
        rule = RULES[code]
        return Diagnostic(
            code,
            severity or rule.severity,
            message,
            file=file if file is not None else (entry.file if entry else None),
            region=region if region is not None else self.region(entry, span),
            action=entry.name if entry is not None else None,
            hint=hint if hint is not None else rule.hint,
        )


# ----------------------------------------------------------------------
# Front end: source text -> entries + SDR0xx diagnostics
# ----------------------------------------------------------------------

def parse_spec_text(
    text: str, file: str | None = None
) -> tuple[list[SpecEntry], list[Diagnostic]]:
    """Split spec text into entries, parsing each action line.

    Follows the exact line conventions of
    :func:`repro.io.load_specification`: blank lines and ``#`` comments
    are skipped, an optional ``name:`` prefix (no brackets before the
    colon) names the action.
    """
    entries: list[SpecEntry] = []
    diagnostics: list[Diagnostic] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        name: str | None = None
        source = stripped
        name_column: int | None = None
        head, sep, tail = stripped.partition(":")
        if sep and "[" not in head and "(" not in head:
            name = head.strip()
            source = tail.strip()
        search_from = raw.index(":") + 1 if name is not None else 0
        column = (raw.index(source, search_from) + 1) if source else len(raw) + 1
        if name:
            name_column = raw.index(name) + 1
        entry = SpecEntry(
            index=len(entries),
            source=source,
            file=file,
            line=lineno,
            column=column,
            declared_name=name,
            name_column=name_column,
        )
        try:
            entry.syntax = parse_action(source)
        except SpecSyntaxError as error:
            at = error.position
            if at is None:
                region = Region(lineno, column, lineno, column + len(source))
            else:
                at = min(at, max(len(source) - 1, 0))
                region = Region(
                    lineno, column + at, lineno, column + at + 1
                )
            diagnostics.append(
                Diagnostic(
                    "SDR001",
                    Severity.ERROR,
                    str(error),
                    file=file,
                    region=region,
                    action=name,
                )
            )
        entries.append(entry)
    return entries, diagnostics


def _syntax_refs(syntax: ActionSyntax):
    """All category references of an action: Clist first, then atoms."""
    yield from syntax.clist
    for atom in syntax.predicate.atoms():
        yield atom.ref


def _resolve_and_bind(
    ctx: LintContext, diagnostics: list[Diagnostic]
) -> None:
    """Name resolution, Clist shape, term binding, action construction."""
    schema = ctx.schema
    known = set(schema.dimension_names)
    for entry in ctx.entries:
        syntax = entry.syntax
        if syntax is None:
            continue
        clean = True
        for ref in _syntax_refs(syntax):
            if ref.dimension not in known:
                clean = False
                diagnostics.append(
                    ctx.diagnostic(
                        "SDR002",
                        f"unknown dimension {ref.dimension!r} (schema has: "
                        + ", ".join(sorted(known))
                        + ")",
                        entry=entry,
                        span=ref.span,
                    )
                )
            elif not schema.dimension_type(ref.dimension).has_category(
                ref.category
            ):
                clean = False
                diagnostics.append(
                    ctx.diagnostic(
                        "SDR003",
                        f"dimension {ref.dimension!r} has no category "
                        f"{ref.category!r}",
                        entry=entry,
                        span=ref.span,
                    )
                )
        targeted: dict[str, str] = {}
        for ref in syntax.clist:
            if ref.dimension in targeted:
                clean = False
                diagnostics.append(
                    ctx.diagnostic(
                        "SDR004",
                        f"Clist names dimension {ref.dimension!r} twice",
                        entry=entry,
                        span=ref.span,
                    )
                )
            targeted[ref.dimension] = ref.category
        missing = sorted(known - set(targeted))
        if missing:
            clean = False
            diagnostics.append(
                ctx.diagnostic(
                    "SDR004",
                    "Clist is missing target categories for: "
                    + ", ".join(repr(m) for m in missing),
                    entry=entry,
                    span=union_spans([r.span for r in syntax.clist]),
                )
            )
        if not clean:
            continue
        display = entry.declared_name or f"action at line {entry.line}"
        for atom in syntax.predicate.atoms():
            try:
                bind_atom(schema, atom, display)
            except (ReproError, ValueError) as error:
                clean = False
                diagnostics.append(
                    ctx.diagnostic(
                        "SDR005", str(error), entry=entry, span=atom.span
                    )
                )
        if not clean:
            continue
        try:
            action = Action(
                schema,
                syntax.clist,
                syntax.predicate,
                entry.declared_name,
                enforce_evaluability=False,
            )
            action.source = entry.source
            action.syntax = syntax
            entry.profiles = tuple(profiles_of(action))
            entry.action = action
        except ReproError as error:
            entry.action = None
            diagnostics.append(
                ctx.diagnostic("SDR005", str(error), entry=entry)
            )


def _check_duplicate_names(
    ctx: LintContext, diagnostics: list[Diagnostic]
) -> None:
    seen: dict[str, SpecEntry] = {}
    for entry in ctx.entries:
        name = entry.name
        if name is None:
            continue
        if name in seen:
            region = None
            if entry.name_column is not None:
                region = Region(
                    entry.line,
                    entry.name_column,
                    entry.line,
                    entry.name_column + len(name),
                )
            first = seen[name]
            diagnostics.append(
                ctx.diagnostic(
                    "SDR006",
                    f"duplicate action name {name!r} (first declared on "
                    f"line {first.line})",
                    entry=entry,
                    region=region,
                )
            )
        else:
            seen[name] = entry
    # Drop later duplicates from the bound set so the semantic checkers
    # (and check_noncrossing's name-keyed profile cache) see one action
    # per name — matching what a ReductionSpecification would accept.
    keep: set[int] = {e.index for e in seen.values()}
    for entry in ctx.entries:
        if entry.action is not None and entry.index not in keep:
            entry.action = None
            entry.profiles = ()


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------

def _run_checkers(ctx: LintContext) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for _, check in CHECKERS:
        out.extend(check(ctx))
    return out


def lint_sources(
    sources: Sequence[tuple[str | None, str]],
    schema: FactSchema,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
    document: object | None = None,
    mo_file: str | None = None,
) -> LintResult:
    """Lint specification source text.

    *sources* is a sequence of ``(filename, text)`` pairs; filenames may
    be ``None`` for in-memory input.  *document* is the raw MO JSON
    document (if one was loaded), which enables the measure-level rules.
    """
    ctx, diagnostics = bind_sources(sources, schema, dimensions, config)
    diagnostics.extend(_run_checkers(ctx))
    diagnostics.extend(lint_document_measures(document, mo_file))
    return LintResult.of(diagnostics)


def bind_sources(
    sources: Sequence[tuple[str | None, str]],
    schema: FactSchema,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> tuple[LintContext, list[Diagnostic]]:
    """Parse and bind spec sources without running the checkers.

    Returns the bound context (``ctx.bound`` holds the usable actions)
    and the front-end diagnostics — the entry point for consumers that
    want the lint engine's error-tolerant parser, like ``repro analyze``.
    """
    entries: list[SpecEntry] = []
    diagnostics: list[Diagnostic] = []
    for file, text in sources:
        file_entries, file_diags = parse_spec_text(text, file)
        for entry in file_entries:
            entry.index = len(entries)
            entries.append(entry)
        diagnostics.extend(file_diags)
    ctx = LintContext(
        schema, entries, dimensions, config or ProverConfig()
    )
    _resolve_and_bind(ctx, diagnostics)
    _check_duplicate_names(ctx, diagnostics)
    return ctx, diagnostics


def lint_paths(
    paths: Sequence[str],
    schema: FactSchema,
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
    document: object | None = None,
    mo_file: str | None = None,
) -> LintResult:
    """Lint specification files from disk."""
    sources: list[tuple[str | None, str]] = []
    for path in paths:
        with open(path, "r", encoding="utf-8") as stream:
            sources.append((path, stream.read()))
    return lint_sources(
        sources, schema, dimensions, config, document, mo_file
    )


def _entries_from_actions(actions: Iterable[Action]) -> list[SpecEntry]:
    entries: list[SpecEntry] = []
    for index, action in enumerate(actions):
        entry = SpecEntry(
            index=index,
            source=action.source,
            line=index + 1,
            column=1,
            declared_name=action.name,
            syntax=action.syntax,
            action=action,
        )
        try:
            entry.profiles = tuple(profiles_of(action))
        except ReproError:
            entry.profiles = ()
        entries.append(entry)
    return entries


def lint_actions(
    actions: Iterable[Action],
    dimensions: Mapping[str, Dimension] | None = None,
    config: ProverConfig | None = None,
) -> LintResult:
    """Run the semantic rules over already-bound actions."""
    entries = _entries_from_actions(actions)
    if not entries:
        return LintResult.of(())
    schema = entries[0].action.schema  # type: ignore[union-attr]
    ctx = LintContext(schema, entries, dimensions, config or ProverConfig())
    diagnostics: list[Diagnostic] = []
    _check_duplicate_names(ctx, diagnostics)
    diagnostics.extend(_run_checkers(ctx))
    return LintResult.of(diagnostics)


def lint_specification(
    specification: "ReductionSpecification",
    config: ProverConfig | None = None,
) -> LintResult:
    """Lint a bound specification with its own dimensions and prover
    configuration, guaranteeing agreement with its insert-time gates."""
    return lint_actions(
        list(specification),
        specification.dimensions,
        config or specification.prover_config,
    )
