"""Static diagnostics over reduction specifications (the lint engine).

A rule-based analyzer that inspects specification source files or bound
:class:`~repro.spec.specification.ReductionSpecification` objects and
reports findings with stable ``SDR`` codes, severities, fix-it hints,
and 1-based line/column source regions.  Reporters render the findings
as human text, machine JSON, or SARIF 2.1.0.

The paper's two soundness conditions (NonCrossing, Section 5.2; Growing,
Section 5.3) are exposed as lint rules ``SDR102``/``SDR103`` and are
computed by the same checker functions that gate specification inserts,
so the two paths cannot disagree.
"""

from .diagnostics import Diagnostic, LintResult, Region, Severity
from .engine import (
    LintContext,
    SpecEntry,
    bind_sources,
    lint_actions,
    lint_paths,
    lint_sources,
    lint_specification,
    parse_spec_text,
)
from .reporters import (
    FORMATS,
    render,
    render_json,
    render_sarif,
    render_text,
    sarif_log,
)
from .rules import CHECKERS, RULES, Rule, lint_document_measures

__all__ = [
    "CHECKERS",
    "Diagnostic",
    "FORMATS",
    "LintContext",
    "LintResult",
    "Region",
    "Rule",
    "RULES",
    "Severity",
    "SpecEntry",
    "bind_sources",
    "lint_actions",
    "lint_document_measures",
    "lint_paths",
    "lint_sources",
    "lint_specification",
    "parse_spec_text",
    "render",
    "render_json",
    "render_sarif",
    "render_text",
    "sarif_log",
]
