"""The lint rule catalog and the semantic checker implementations.

Every diagnostic the engine can produce carries a stable ``SDR`` code
registered here.  Codes are grouped by family:

* ``SDR0xx`` — front-end findings (syntax, name resolution, binding),
  emitted by :mod:`repro.lint.engine` while it parses and binds actions;
* ``SDR1xx`` — semantic findings over bound actions, produced by the
  checker functions in this module.

The two paper soundness conditions are deliberately *re-expressed* as
lint rules on top of :func:`repro.checks.noncrossing.check_noncrossing`
and :func:`repro.checks.growing.check_growing`, so the lint verdict can
never diverge from the insert-time gates of
:class:`repro.spec.specification.ReductionSpecification`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..checks.growing import check_growing
from ..checks.noncrossing import check_noncrossing
from ..checks.prover import (
    categorical_regions,
    profiles_overlap,
    region_is_symbolic,
    sample_times,
)
from ..core.measures import resolve_aggregate
from ..errors import MeasureError
from ..spec.ast import Atom, union_spans
from ..spec.ranges import ConjunctProfile, window_at, window_contains
from ..timedim.now import NowRelative
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintContext, SpecEntry


@dataclass(frozen=True)
class Rule:
    """Registry metadata of one lint rule."""

    code: str
    name: str
    severity: Severity
    summary: str
    paper: str
    hint: str | None = None


_RULE_DEFS = (
    Rule(
        "SDR001",
        "spec-syntax",
        Severity.ERROR,
        "The action does not conform to the Table 1 grammar.",
        "Section 4.1, Table 1",
    ),
    Rule(
        "SDR002",
        "unknown-dimension",
        Severity.ERROR,
        "A Clist entry or predicate atom names a dimension the fact schema "
        "does not have.",
        "Section 3",
    ),
    Rule(
        "SDR003",
        "unknown-category",
        Severity.ERROR,
        "A category reference is not part of the dimension's category "
        "lattice.",
        "Section 3",
        hint="check the dimension's hierarchy for the spelling of the "
        "category",
    ),
    Rule(
        "SDR004",
        "malformed-clist",
        Severity.ERROR,
        "The Clist must name exactly one target category per dimension of "
        "the fact schema.",
        "Section 4.1",
    ),
    Rule(
        "SDR005",
        "bad-term",
        Severity.ERROR,
        "A predicate term cannot be bound against the schema (ill-typed "
        "time literal or unsupported category).",
        "Section 4.1, Table 1",
    ),
    Rule(
        "SDR006",
        "duplicate-action-name",
        Severity.ERROR,
        "Two actions in the specification share a name.",
        "Definition 1",
    ),
    Rule(
        "SDR101",
        "unevaluable-target",
        Severity.ERROR,
        "The action aggregates a dimension above a category its own "
        "predicate still constrains, so the predicate could not be "
        "re-evaluated after the action fires.",
        "Section 4.1 (Cat_i(a) <=_Ti C_pred)",
        hint="lower the aggregation target or coarsen the predicate "
        "category",
    ),
    Rule(
        "SDR102",
        "crossing-actions",
        Severity.ERROR,
        "Two actions can select the same cell while their target "
        "granularities are incomparable under <=_V (NonCrossing "
        "violation).",
        "Sections 4.3 and 5.2, Equation 14",
        hint="make the targets comparable or the predicates disjoint",
    ),
    Rule(
        "SDR103",
        "not-growing",
        Severity.ERROR,
        "A shrinking action stops selecting cells that no <=_V-larger "
        "action takes over, letting aggregation levels decrease (Growing "
        "violation).",
        "Sections 4.3 and 5.3, Equations 17 and 23",
        hint="add a catcher action that covers the trailing edge at a "
        "granularity at least as coarse",
    ),
    Rule(
        "SDR104",
        "unsatisfiable-predicate",
        Severity.ERROR,
        "The predicate can never select a cell at any evaluation time; the "
        "action is unreachable.",
        "Section 5.2 (satisfiability checking)",
    ),
    Rule(
        "SDR105",
        "unsatisfiable-disjunct",
        Severity.WARNING,
        "One disjunct of the predicate's DNF is unsatisfiable and "
        "contributes nothing.",
        "Section 5.3 (DNF pre-processing)",
    ),
    Rule(
        "SDR106",
        "shadowed-action",
        Severity.WARNING,
        "Every cell the action selects is always claimed by a "
        "<=_V-coarser action as well, so this action never determines a "
        "fact's granularity.",
        "Section 4.2 (the <=_V order and max-granularity semantics)",
        hint="delete the action or narrow the coarser action's predicate",
    ),
    Rule(
        "SDR107",
        "future-reference",
        Severity.WARNING,
        "A NOW-relative term reaches into the future (NOW + span); cells "
        "are selected before their data can exist.",
        "Section 4.1 (NOW-relative time terms)",
    ),
    Rule(
        "SDR108",
        "redundant-now-bound",
        Severity.INFO,
        "A NOW-relative bound is subsumed by a tighter bound in the same "
        "conjunct, or spells redundant NOW arithmetic.",
        "Section 4.3 (boundary categories)",
    ),
    Rule(
        "SDR109",
        "redundant-disjunct",
        Severity.INFO,
        "A DNF disjunct is implied by a more general disjunct of the same "
        "predicate.",
        "Section 5.3 (DNF pre-processing)",
    ),
    Rule(
        "SDR110",
        "bottom-no-op",
        Severity.INFO,
        "The action aggregates every dimension to its bottom category, so "
        "it never changes a fact (a no-op outside disjoint rewrites).",
        "Section 7.1",
    ),
    Rule(
        "SDR111",
        "non-distributive-aggregate",
        Severity.WARNING,
        "A measure declares a non-distributive default aggregate; gradual "
        "re-aggregation (Definition 2) would be unsound.",
        "Section 3",
        hint="use a distributive aggregate (sum, count, min, max)",
    ),
)

#: Stable code -> rule, in catalog order.
RULES: dict[str, Rule] = {rule.code: rule for rule in _RULE_DEFS}

Checker = Callable[["LintContext"], Iterable[Diagnostic]]

#: Semantic checkers, run by the engine over the bound action set.
CHECKERS: list[tuple[Rule, Checker]] = []


def checker(code: str) -> Callable[[Checker], Checker]:
    def register(function: Checker) -> Checker:
        CHECKERS.append((RULES[code], function))
        return function

    return register


# ----------------------------------------------------------------------
# SDR101 — evaluability of targets against predicate categories
# ----------------------------------------------------------------------

@checker("SDR101")
def check_unevaluable_target(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            dimension_type = action.schema.dimension_type(atom.ref.dimension)
            target = action.cat_i(atom.ref.dimension)
            if not dimension_type.le(target, atom.ref.category):
                yield ctx.diagnostic(
                    "SDR101",
                    f"action {action.name!r} aggregates "
                    f"{atom.ref.dimension!r} to {target!r} but its predicate "
                    f"constrains {atom.ref.category!r}, which is not above "
                    "the target",
                    entry=entry,
                    span=atom.span,
                )


# ----------------------------------------------------------------------
# SDR102 / SDR103 — the paper's soundness conditions as lint rules
# ----------------------------------------------------------------------

@checker("SDR102")
def check_rule_noncrossing(ctx: "LintContext") -> Iterator[Diagnostic]:
    actions = [entry.action for entry in ctx.bound]
    for violation in check_noncrossing(actions, ctx.dimensions, ctx.prover):
        entry = ctx.entry_for(violation.second) or ctx.entry_for(
            violation.first
        )
        yield ctx.diagnostic("SDR102", str(violation), entry=entry)


@checker("SDR103")
def check_rule_growing(ctx: "LintContext") -> Iterator[Diagnostic]:
    actions = [entry.action for entry in ctx.bound]
    for violation in check_growing(actions, ctx.dimensions, ctx.prover):
        yield ctx.diagnostic(
            "SDR103", str(violation), entry=ctx.entry_for(violation.action)
        )


# ----------------------------------------------------------------------
# SDR104 / SDR105 — satisfiability via the bounded prover
# ----------------------------------------------------------------------

@checker("SDR104")
def check_unsatisfiable(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        profiles = entry.profiles
        if not profiles:
            yield ctx.diagnostic(
                "SDR104",
                f"action {action.name!r} has predicate FALSE and can never "
                "fire",
                entry=entry,
            )
            continue
        satisfiable = [
            profiles_overlap(p, p, ctx.dimensions, ctx.prover)
            for p in profiles
        ]
        if not any(satisfiable):
            yield ctx.diagnostic(
                "SDR104",
                f"the predicate of action {action.name!r} is unsatisfiable "
                "at every evaluation time on the prover horizon",
                entry=entry,
            )
            continue
        for atoms, ok in zip(action.conjuncts(), satisfiable):
            if ok:
                continue
            span = union_spans([a.span for a in atoms])
            rendered = " AND ".join(str(a) for a in atoms)
            yield ctx.diagnostic(
                "SDR105",
                f"disjunct [{rendered}] of action {action.name!r} is "
                "unsatisfiable",
                entry=entry,
                span=span,
            )


# ----------------------------------------------------------------------
# SDR106 — dead / shadowed actions
# ----------------------------------------------------------------------

def _window_modelled_exactly(profile: ConjunctProfile) -> bool:
    """Whether ``window_at`` is exact (not an over-approximation) for the
    profile: only plain comparisons, no membership hulls or exclusions."""
    return all(
        atom.op in ("<", "<=", ">", ">=", "=") for atom in profile.time_atoms
    )


def _region_contained(
    inner: ConjunctProfile,
    outer: ConjunctProfile,
    ctx: "LintContext",
) -> bool:
    """Prove the inner categorical region is inside the outer one."""
    inner_regions = categorical_regions(inner, ctx.dimensions)
    outer_regions = categorical_regions(outer, ctx.dimensions)
    for name, outer_region in outer_regions.items():
        if outer_region is None:
            continue  # outer unconstrained in this dimension
        if region_is_symbolic(outer_region):
            return False  # cannot prove coverage with an ungrounded region
        inner_region = inner_regions.get(name)
        if inner_region is None or region_is_symbolic(inner_region):
            return False
        if not inner_region <= outer_region:
            return False
    return True


def _profile_contained(
    inner: ConjunctProfile,
    outer: ConjunctProfile,
    ctx: "LintContext",
) -> bool:
    if outer.unmodelled_atoms or not _window_modelled_exactly(outer):
        return False  # the outer region would be an over-approximation
    if not _region_contained(inner, outer, ctx):
        return False
    for t in sample_times((inner, outer), ctx.prover):
        inner_window = window_at(inner, t)
        outer_window = window_at(outer, t)
        if inner_window is None:
            if outer_window is not None:
                return False
            continue
        if not window_contains(outer_window, inner_window):
            return False
    return True


@checker("SDR106")
def check_shadowed(ctx: "LintContext") -> Iterator[Diagnostic]:
    bound = ctx.bound
    for i, entry in enumerate(bound):
        action = entry.action
        assert action is not None
        for j, other_entry in enumerate(bound):
            if i == j:
                continue
            other = other_entry.action
            assert other is not None
            if not action.le(other):
                continue
            if action.cat() == other.cat() and j > i:
                # For duplicates at the same granularity, only flag the
                # later action as the shadowed one.
                continue
            live = [
                p
                for p in entry.profiles
                if profiles_overlap(p, p, ctx.dimensions, ctx.prover)
            ]
            if not live:
                continue  # unsatisfiable actions are SDR104's business
            if all(
                any(
                    _profile_contained(p, q, ctx)
                    for q in other_entry.profiles
                )
                for p in live
            ):
                yield ctx.diagnostic(
                    "SDR106",
                    f"action {action.name!r} is shadowed by "
                    f"{other.name!r}: every cell it selects is always "
                    "claimed at a granularity at least as coarse",
                    entry=entry,
                )
                break


# ----------------------------------------------------------------------
# SDR107 / SDR108 — NOW misuse
# ----------------------------------------------------------------------

@checker("SDR107")
def check_future_reference(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            if any(
                isinstance(term, NowRelative) and term.sign > 0
                for term in atom.terms
            ):
                yield ctx.diagnostic(
                    "SDR107",
                    f"action {action.name!r} compares against a future "
                    f"time (NOW + span) in [{atom}]",
                    entry=entry,
                    span=atom.span,
                )


def _now_bound_atoms(
    atoms: Iterable[Atom],
) -> Iterator[tuple[Atom, NowRelative, str]]:
    """Comparison atoms with a single NOW-relative term, with direction."""
    for atom in atoms:
        if atom.op in ("<", "<="):
            direction = "upper"
        elif atom.op in (">", ">="):
            direction = "lower"
        else:
            continue
        term = atom.terms[0]
        if isinstance(term, NowRelative):
            yield atom, term, direction


@checker("SDR108")
def check_redundant_now_bounds(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            for term in atom.terms:
                if (
                    isinstance(term, NowRelative)
                    and term.span is not None
                    and term.span.count == 0
                ):
                    yield ctx.diagnostic(
                        "SDR108",
                        f"zero-length offset in [{atom}]: "
                        f"`{term}` is just NOW",
                        entry=entry,
                        span=atom.span,
                    )
        for atoms in action.conjuncts():
            groups: dict[tuple[str, str, str], list[tuple[Atom, int]]] = {}
            for atom, term, direction in _now_bound_atoms(atoms):
                key = (atom.ref.dimension, atom.ref.category, direction)
                groups.setdefault(key, []).append((atom, term.offset_days()))
            for (_, _, direction), members in groups.items():
                if len(members) < 2:
                    continue
                offsets = [offset for _, offset in members]
                best = min(offsets) if direction == "upper" else max(offsets)
                for atom, offset in members:
                    if offset == best:
                        continue
                    yield ctx.diagnostic(
                        "SDR108",
                        f"bound [{atom}] in action {action.name!r} is "
                        "subsumed by a tighter NOW-relative bound in the "
                        "same conjunct",
                        entry=entry,
                        span=atom.span,
                    )


# ----------------------------------------------------------------------
# SDR109 — redundant DNF disjuncts
# ----------------------------------------------------------------------

@checker("SDR109")
def check_redundant_disjunct(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        conjuncts = action.conjuncts()
        if len(conjuncts) < 2:
            continue
        atom_sets = [frozenset(atoms) for atoms in conjuncts]
        for index, atom_set in enumerate(atom_sets):
            if any(
                j != index and other < atom_set
                for j, other in enumerate(atom_sets)
            ):
                rendered = " AND ".join(str(a) for a in conjuncts[index])
                yield ctx.diagnostic(
                    "SDR109",
                    f"disjunct [{rendered}] of action {action.name!r} is "
                    "implied by a more general disjunct and can be dropped",
                    entry=entry,
                    span=union_spans([a.span for a in conjuncts[index]]),
                )


# ----------------------------------------------------------------------
# SDR110 — bottom-granularity no-ops
# ----------------------------------------------------------------------

@checker("SDR110")
def check_bottom_noop(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        if action.cat() == action.schema.bottom_granularity():
            yield ctx.diagnostic(
                "SDR110",
                f"action {action.name!r} aggregates to the bottom "
                "granularity in every dimension and never changes a fact",
                entry=entry,
            )


# ----------------------------------------------------------------------
# SDR111 — non-distributive default aggregates (MO document level)
# ----------------------------------------------------------------------

def lint_document_measures(
    document: object, mo_file: str | None = None
) -> list[Diagnostic]:
    """Diagnostics over the raw MO document's measure declarations.

    Runs *before* MO construction so that declarations the model layer
    would reject outright (Section 3 restricts default aggregates to
    distributive functions) still surface as diagnostics.
    """
    out: list[Diagnostic] = []
    if not isinstance(document, dict):
        return out
    for measure in document.get("measures", ()):
        name = measure.get("name", "?")
        declared = measure.get("aggregate", "sum")
        try:
            aggregate = resolve_aggregate(declared)
        except MeasureError:
            out.append(
                Diagnostic(
                    "SDR111",
                    Severity.WARNING,
                    f"measure {name!r} declares unknown aggregate "
                    f"{declared!r}",
                    file=mo_file,
                )
            )
            continue
        if not aggregate.distributive:
            out.append(
                Diagnostic(
                    "SDR111",
                    Severity.WARNING,
                    f"measure {name!r} declares non-distributive default "
                    f"aggregate {aggregate.name!r}; gradual re-aggregation "
                    "would be unsound (the model layer will reject it)",
                    file=mo_file,
                    hint=RULES["SDR111"].hint,
                )
            )
    return out
