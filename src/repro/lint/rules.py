"""The lint rule catalog and the semantic checker implementations.

Every diagnostic the engine can produce carries a stable ``SDR`` code
registered here.  Codes are grouped by family:

* ``SDR0xx`` — front-end findings (syntax, name resolution, binding),
  emitted by :mod:`repro.lint.engine` while it parses and binds actions;
* ``SDR1xx`` — semantic findings over bound actions, produced by the
  checker functions in this module.

The two paper soundness conditions are deliberately *re-expressed* as
lint rules on top of :func:`repro.checks.noncrossing.check_noncrossing`
and :func:`repro.checks.growing.check_growing`, so the lint verdict can
never diverge from the insert-time gates of
:class:`repro.spec.specification.ReductionSpecification`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from ..analysis.boxes import profile_contained
from ..analysis.matrix import Verdict, relationship_matrix
from ..analysis.reach import reachability
from ..checks.growing import check_growing
from ..checks.noncrossing import check_noncrossing
from ..checks.prover import profiles_overlap
from ..core.hierarchy import is_top
from ..core.measures import resolve_aggregate
from ..errors import MeasureError, ReproError
from ..spec.action import is_time_dimension_type
from ..spec.ast import Atom, union_spans
from ..timedim.calendar import first_day, last_day
from ..timedim.now import AbsoluteTime, NowRelative
from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import LintContext, SpecEntry


@dataclass(frozen=True)
class Rule:
    """Registry metadata of one lint rule."""

    code: str
    name: str
    severity: Severity
    summary: str
    paper: str
    hint: str | None = None


_RULE_DEFS = (
    Rule(
        "SDR001",
        "spec-syntax",
        Severity.ERROR,
        "The action does not conform to the Table 1 grammar.",
        "Section 4.1, Table 1",
    ),
    Rule(
        "SDR002",
        "unknown-dimension",
        Severity.ERROR,
        "A Clist entry or predicate atom names a dimension the fact schema "
        "does not have.",
        "Section 3",
    ),
    Rule(
        "SDR003",
        "unknown-category",
        Severity.ERROR,
        "A category reference is not part of the dimension's category "
        "lattice.",
        "Section 3",
        hint="check the dimension's hierarchy for the spelling of the "
        "category",
    ),
    Rule(
        "SDR004",
        "malformed-clist",
        Severity.ERROR,
        "The Clist must name exactly one target category per dimension of "
        "the fact schema.",
        "Section 4.1",
    ),
    Rule(
        "SDR005",
        "bad-term",
        Severity.ERROR,
        "A predicate term cannot be bound against the schema (ill-typed "
        "time literal or unsupported category).",
        "Section 4.1, Table 1",
    ),
    Rule(
        "SDR006",
        "duplicate-action-name",
        Severity.ERROR,
        "Two actions in the specification share a name.",
        "Definition 1",
    ),
    Rule(
        "SDR101",
        "unevaluable-target",
        Severity.ERROR,
        "The action aggregates a dimension above a category its own "
        "predicate still constrains, so the predicate could not be "
        "re-evaluated after the action fires.",
        "Section 4.1 (Cat_i(a) <=_Ti C_pred)",
        hint="lower the aggregation target or coarsen the predicate "
        "category",
    ),
    Rule(
        "SDR102",
        "crossing-actions",
        Severity.ERROR,
        "Two actions can select the same cell while their target "
        "granularities are incomparable under <=_V (NonCrossing "
        "violation).",
        "Sections 4.3 and 5.2, Equation 14",
        hint="make the targets comparable or the predicates disjoint",
    ),
    Rule(
        "SDR103",
        "not-growing",
        Severity.ERROR,
        "A shrinking action stops selecting cells that no <=_V-larger "
        "action takes over, letting aggregation levels decrease (Growing "
        "violation).",
        "Sections 4.3 and 5.3, Equations 17 and 23",
        hint="add a catcher action that covers the trailing edge at a "
        "granularity at least as coarse",
    ),
    Rule(
        "SDR104",
        "unsatisfiable-predicate",
        Severity.ERROR,
        "The predicate can never select a cell at any evaluation time; the "
        "action is unreachable.",
        "Section 5.2 (satisfiability checking)",
    ),
    Rule(
        "SDR105",
        "unsatisfiable-disjunct",
        Severity.WARNING,
        "One disjunct of the predicate's DNF is unsatisfiable and "
        "contributes nothing.",
        "Section 5.3 (DNF pre-processing)",
    ),
    Rule(
        "SDR106",
        "shadowed-action",
        Severity.WARNING,
        "Every cell the action selects is always claimed by a "
        "<=_V-coarser action as well, so this action never determines a "
        "fact's granularity.",
        "Section 4.2 (the <=_V order and max-granularity semantics)",
        hint="delete the action or narrow the coarser action's predicate",
    ),
    Rule(
        "SDR107",
        "future-reference",
        Severity.WARNING,
        "A NOW-relative term reaches into the future (NOW + span); cells "
        "are selected before their data can exist.",
        "Section 4.1 (NOW-relative time terms)",
    ),
    Rule(
        "SDR108",
        "redundant-now-bound",
        Severity.INFO,
        "A NOW-relative bound is subsumed by a tighter bound in the same "
        "conjunct, or spells redundant NOW arithmetic.",
        "Section 4.3 (boundary categories)",
    ),
    Rule(
        "SDR109",
        "redundant-disjunct",
        Severity.INFO,
        "A DNF disjunct is implied by a more general disjunct of the same "
        "predicate.",
        "Section 5.3 (DNF pre-processing)",
    ),
    Rule(
        "SDR110",
        "bottom-no-op",
        Severity.INFO,
        "The action aggregates every dimension to its bottom category, so "
        "it never changes a fact (a no-op outside disjoint rewrites).",
        "Section 7.1",
    ),
    Rule(
        "SDR111",
        "non-distributive-aggregate",
        Severity.WARNING,
        "A measure declares a non-distributive default aggregate; gradual "
        "re-aggregation (Definition 2) would be unsound.",
        "Section 3",
        hint="use a distributive aggregate (sum, count, min, max)",
    ),
    Rule(
        "SDR201",
        "dead-action",
        Severity.WARNING,
        "The action is satisfiable, but the union of coarser-or-equal "
        "actions always claims every cell it admits, so it never "
        "determines a fact's granularity.",
        "Sections 4.2 and 7.1 (union coverage)",
        hint="delete the action or narrow the covering actions' "
        "predicates",
    ),
    Rule(
        "SDR202",
        "shadowed-disjunct",
        Severity.WARNING,
        "One disjunct of the predicate is always claimed by a "
        "coarser-or-equal action and contributes nothing.",
        "Section 5.3 (DNF pre-processing)",
    ),
    Rule(
        "SDR203",
        "overlapping-same-granularity",
        Severity.INFO,
        "Two actions at the same target granularity provably admit a "
        "common cell; their subcubes merge and cannot shard apart.",
        "Section 7.1",
    ),
    Rule(
        "SDR204",
        "vacuous-atom",
        Severity.INFO,
        "A predicate atom constrains nothing: it admits every value of "
        "its category, excludes a value the dimension does not have, or "
        "is subsumed by a tighter absolute bound in the same conjunct.",
        "Section 4.1, Table 1",
    ),
    Rule(
        "SDR205",
        "always-true-residual",
        Severity.WARNING,
        "Every action predicate is unsatisfiable, so the residual claims "
        "all facts and the specification never changes anything.",
        "Section 7.1 (the residual action)",
    ),
)

#: Stable code -> rule, in catalog order.
RULES: dict[str, Rule] = {rule.code: rule for rule in _RULE_DEFS}

Checker = Callable[["LintContext"], Iterable[Diagnostic]]

#: Semantic checkers, run by the engine over the bound action set.
CHECKERS: list[tuple[Rule, Checker]] = []


def checker(code: str) -> Callable[[Checker], Checker]:
    def register(function: Checker) -> Checker:
        CHECKERS.append((RULES[code], function))
        return function

    return register


# ----------------------------------------------------------------------
# SDR101 — evaluability of targets against predicate categories
# ----------------------------------------------------------------------

@checker("SDR101")
def check_unevaluable_target(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            dimension_type = action.schema.dimension_type(atom.ref.dimension)
            target = action.cat_i(atom.ref.dimension)
            if not dimension_type.le(target, atom.ref.category):
                yield ctx.diagnostic(
                    "SDR101",
                    f"action {action.name!r} aggregates "
                    f"{atom.ref.dimension!r} to {target!r} but its predicate "
                    f"constrains {atom.ref.category!r}, which is not above "
                    "the target",
                    entry=entry,
                    span=atom.span,
                )


# ----------------------------------------------------------------------
# SDR102 / SDR103 — the paper's soundness conditions as lint rules
# ----------------------------------------------------------------------

@checker("SDR102")
def check_rule_noncrossing(ctx: "LintContext") -> Iterator[Diagnostic]:
    actions = [entry.action for entry in ctx.bound]
    for violation in check_noncrossing(actions, ctx.dimensions, ctx.prover):
        entry = ctx.entry_for(violation.second) or ctx.entry_for(
            violation.first
        )
        yield ctx.diagnostic("SDR102", str(violation), entry=entry)


@checker("SDR103")
def check_rule_growing(ctx: "LintContext") -> Iterator[Diagnostic]:
    actions = [entry.action for entry in ctx.bound]
    for violation in check_growing(actions, ctx.dimensions, ctx.prover):
        yield ctx.diagnostic(
            "SDR103", str(violation), entry=ctx.entry_for(violation.action)
        )


# ----------------------------------------------------------------------
# SDR104 / SDR105 — satisfiability via the bounded prover
# ----------------------------------------------------------------------

@checker("SDR104")
def check_unsatisfiable(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        profiles = entry.profiles
        if not profiles:
            yield ctx.diagnostic(
                "SDR104",
                f"action {action.name!r} has predicate FALSE and can never "
                "fire",
                entry=entry,
            )
            continue
        satisfiable = [
            profiles_overlap(p, p, ctx.dimensions, ctx.prover)
            for p in profiles
        ]
        if not any(satisfiable):
            yield ctx.diagnostic(
                "SDR104",
                f"the predicate of action {action.name!r} is unsatisfiable "
                "at every evaluation time on the prover horizon",
                entry=entry,
            )
            continue
        for atoms, ok in zip(action.conjuncts(), satisfiable):
            if ok:
                continue
            span = union_spans([a.span for a in atoms])
            rendered = " AND ".join(str(a) for a in atoms)
            yield ctx.diagnostic(
                "SDR105",
                f"disjunct [{rendered}] of action {action.name!r} is "
                "unsatisfiable",
                entry=entry,
                span=span,
            )


# ----------------------------------------------------------------------
# SDR106 — dead / shadowed actions
# ----------------------------------------------------------------------

def _single_container_shadowed(ctx: "LintContext") -> dict[str, str]:
    """Actions with one coarser action containing every live disjunct —
    the SDR106 condition, shared with the SDR2xx family so the analyzer
    rules can defer to the simpler finding when it applies.

    Containment proofs live in :mod:`repro.analysis.boxes`; lint and the
    semantic analyzer share one implementation.
    """
    out: dict[str, str] = {}
    bound = ctx.bound
    for i, entry in enumerate(bound):
        action = entry.action
        assert action is not None
        for j, other_entry in enumerate(bound):
            if i == j:
                continue
            other = other_entry.action
            assert other is not None
            if not action.le(other):
                continue
            if action.cat() == other.cat() and j > i:
                # For duplicates at the same granularity, only flag the
                # later action as the shadowed one.
                continue
            live = [
                p
                for p in entry.profiles
                if profiles_overlap(p, p, ctx.dimensions, ctx.prover)
            ]
            if not live:
                continue  # unsatisfiable actions are SDR104's business
            if all(
                any(
                    profile_contained(p, q, ctx.dimensions, ctx.prover)
                    for q in other_entry.profiles
                )
                for p in live
            ):
                out[action.name] = other.name
                break
    return out


@checker("SDR106")
def check_shadowed(ctx: "LintContext") -> Iterator[Diagnostic]:
    for name, container in _single_container_shadowed(ctx).items():
        yield ctx.diagnostic(
            "SDR106",
            f"action {name!r} is shadowed by "
            f"{container!r}: every cell it selects is always "
            "claimed at a granularity at least as coarse",
            entry=ctx.entry_for(name),
        )


# ----------------------------------------------------------------------
# SDR107 / SDR108 — NOW misuse
# ----------------------------------------------------------------------

@checker("SDR107")
def check_future_reference(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            if any(
                isinstance(term, NowRelative) and term.sign > 0
                for term in atom.terms
            ):
                yield ctx.diagnostic(
                    "SDR107",
                    f"action {action.name!r} compares against a future "
                    f"time (NOW + span) in [{atom}]",
                    entry=entry,
                    span=atom.span,
                )


def _now_bound_atoms(
    atoms: Iterable[Atom],
) -> Iterator[tuple[Atom, NowRelative, str]]:
    """Comparison atoms with a single NOW-relative term, with direction."""
    for atom in atoms:
        if atom.op in ("<", "<="):
            direction = "upper"
        elif atom.op in (">", ">="):
            direction = "lower"
        else:
            continue
        term = atom.terms[0]
        if isinstance(term, NowRelative):
            yield atom, term, direction


@checker("SDR108")
def check_redundant_now_bounds(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        for atom in action.atoms():
            for term in atom.terms:
                if (
                    isinstance(term, NowRelative)
                    and term.span is not None
                    and term.span.count == 0
                ):
                    yield ctx.diagnostic(
                        "SDR108",
                        f"zero-length offset in [{atom}]: "
                        f"`{term}` is just NOW",
                        entry=entry,
                        span=atom.span,
                    )
        for atoms in action.conjuncts():
            groups: dict[tuple[str, str, str], list[tuple[Atom, int]]] = {}
            for atom, term, direction in _now_bound_atoms(atoms):
                key = (atom.ref.dimension, atom.ref.category, direction)
                groups.setdefault(key, []).append((atom, term.offset_days()))
            for (_, _, direction), members in groups.items():
                if len(members) < 2:
                    continue
                offsets = [offset for _, offset in members]
                best = min(offsets) if direction == "upper" else max(offsets)
                for atom, offset in members:
                    if offset == best:
                        continue
                    yield ctx.diagnostic(
                        "SDR108",
                        f"bound [{atom}] in action {action.name!r} is "
                        "subsumed by a tighter NOW-relative bound in the "
                        "same conjunct",
                        entry=entry,
                        span=atom.span,
                    )


# ----------------------------------------------------------------------
# SDR109 — redundant DNF disjuncts
# ----------------------------------------------------------------------

@checker("SDR109")
def check_redundant_disjunct(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        conjuncts = action.conjuncts()
        if len(conjuncts) < 2:
            continue
        atom_sets = [frozenset(atoms) for atoms in conjuncts]
        for index, atom_set in enumerate(atom_sets):
            if any(
                j != index and other < atom_set
                for j, other in enumerate(atom_sets)
            ):
                rendered = " AND ".join(str(a) for a in conjuncts[index])
                yield ctx.diagnostic(
                    "SDR109",
                    f"disjunct [{rendered}] of action {action.name!r} is "
                    "implied by a more general disjunct and can be dropped",
                    entry=entry,
                    span=union_spans([a.span for a in conjuncts[index]]),
                )


# ----------------------------------------------------------------------
# SDR110 — bottom-granularity no-ops
# ----------------------------------------------------------------------

@checker("SDR110")
def check_bottom_noop(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        if action.cat() == action.schema.bottom_granularity():
            yield ctx.diagnostic(
                "SDR110",
                f"action {action.name!r} aggregates to the bottom "
                "granularity in every dimension and never changes a fact",
                entry=entry,
            )


# ----------------------------------------------------------------------
# SDR201 / SDR202 — semantic-analyzer reachability findings
# ----------------------------------------------------------------------

@checker("SDR201")
def check_dead_action(ctx: "LintContext") -> Iterator[Diagnostic]:
    bound = ctx.bound
    if len(bound) < 2:
        return
    shadowed = _single_container_shadowed(ctx)
    actions = [entry.action for entry in bound]
    result = reachability(actions, ctx.dimensions, ctx.prover)
    for name, catchers in result.dead.items():
        if name in shadowed:
            continue  # the single-container case is SDR106's finding
        covered_by = ", ".join(repr(c) for c in catchers)
        yield ctx.diagnostic(
            "SDR201",
            f"action {name!r} is dead: the union of {covered_by} always "
            "claims every cell it admits",
            entry=ctx.entry_for(name),
        )


@checker("SDR202")
def check_shadowed_disjunct(ctx: "LintContext") -> Iterator[Diagnostic]:
    bound = ctx.bound
    if len(bound) < 2:
        return
    shadowed = _single_container_shadowed(ctx)
    for i, entry in enumerate(bound):
        action = entry.action
        assert action is not None
        if action.name in shadowed:
            continue  # the whole action is SDR106's finding
        conjuncts = action.conjuncts()
        if len(conjuncts) < 2:
            continue  # a single disjunct would shadow the whole action
        for atoms, profile in zip(conjuncts, entry.profiles):
            if not profiles_overlap(
                profile, profile, ctx.dimensions, ctx.prover
            ):
                continue  # unsatisfiable disjuncts are SDR105's business
            container = None
            for j, other_entry in enumerate(bound):
                if i == j:
                    continue
                other = other_entry.action
                assert other is not None
                if not action.le(other):
                    continue
                if action.cat() == other.cat() and j > i:
                    continue
                if any(
                    profile_contained(profile, q, ctx.dimensions, ctx.prover)
                    for q in other_entry.profiles
                ):
                    container = other.name
                    break
            if container is not None:
                rendered = " AND ".join(str(a) for a in atoms)
                yield ctx.diagnostic(
                    "SDR202",
                    f"disjunct [{rendered}] of action {action.name!r} is "
                    f"always claimed by {container!r} and contributes "
                    "nothing",
                    entry=entry,
                    span=union_spans([a.span for a in atoms]),
                )


# ----------------------------------------------------------------------
# SDR203 — same-granularity overlaps from the relationship matrix
# ----------------------------------------------------------------------

@checker("SDR203")
def check_same_granularity_overlap(
    ctx: "LintContext",
) -> Iterator[Diagnostic]:
    bound = ctx.bound
    actions = [entry.action for entry in bound]
    pairs = [
        (a, b)
        for i, a in enumerate(actions)
        for b in actions[i + 1:]
        if a is not None and b is not None and a.cat() == b.cat()
    ]
    if not pairs:
        return
    matrix = relationship_matrix(actions, ctx.dimensions, ctx.prover)
    for a, b in pairs:
        relation = matrix.get(a.name, b.name)
        if relation is None or relation.verdict is not Verdict.OVERLAPPING:
            continue
        detail = ""
        if relation.witness is not None:
            witness = relation.witness
            cell = ", ".join(f"{k}={v}" for k, v in witness.cell)
            detail = (
                f" (witness at {witness.at.isoformat()}"
                + (f": {cell}" if cell else "")
                + ")"
            )
        yield ctx.diagnostic(
            "SDR203",
            f"actions {a.name!r} and {b.name!r} target the same "
            f"granularity and provably admit a common cell{detail}; "
            "their subcubes merge and cannot shard apart",
            entry=ctx.entry_for(b.name) or ctx.entry_for(a.name),
        )


# ----------------------------------------------------------------------
# SDR204 — vacuous predicate atoms
# ----------------------------------------------------------------------

def _vacuous_categorical(
    ctx: "LintContext", action, atom: Atom
) -> str | None:
    name = atom.ref.dimension
    if is_time_dimension_type(action.schema.dimension_type(name)):
        return None
    if ctx.dimensions is None or name not in ctx.dimensions:
        return None
    category = atom.ref.category
    if is_top(category):
        return None
    try:
        domain = ctx.dimensions[name].values(category)
    except ReproError:
        return None
    values = {term for term in atom.terms if isinstance(term, str)}
    if len(values) != len(atom.terms):
        return None  # symbolic terms cannot be grounded
    if atom.op in ("=", "in") and domain and domain <= values:
        return (
            f"[{atom}] in action {action.name!r} admits every "
            f"{category!r} value of dimension {name!r} and constrains "
            "nothing"
        )
    if atom.op == "!=" and not (values & domain):
        return (
            f"[{atom}] in action {action.name!r} excludes only values "
            f"the {name!r} dimension does not have"
        )
    return None


def _absolute_day_bounds(
    atoms: Iterable[Atom],
) -> Iterator[tuple[Atom, str, int]]:
    """Comparison atoms bounding by an absolute time value, as
    ``(atom, direction, inclusive day ordinal of the bound)``."""
    for atom in atoms:
        if atom.op in ("<", "<="):
            direction = "upper"
        elif atom.op in (">", ">="):
            direction = "lower"
        else:
            continue
        term = atom.terms[0]
        if not isinstance(term, AbsoluteTime):
            continue
        if direction == "upper":
            day = last_day(term.category, term.value).toordinal()
            if atom.op == "<":
                day -= 1
        else:
            day = first_day(term.category, term.value).toordinal()
            if atom.op == ">":
                day += 1
        yield atom, direction, day


@checker("SDR204")
def check_vacuous_atom(ctx: "LintContext") -> Iterator[Diagnostic]:
    for entry in ctx.bound:
        action = entry.action
        assert action is not None
        seen: set[Atom] = set()
        for atom in action.atoms():
            if atom in seen:
                continue
            seen.add(atom)
            message = _vacuous_categorical(ctx, action, atom)
            if message:
                yield ctx.diagnostic(
                    "SDR204", message, entry=entry, span=atom.span
                )
        for atoms in action.conjuncts():
            groups: dict[tuple[str, str], list[tuple[Atom, int]]] = {}
            for atom, direction, day in _absolute_day_bounds(atoms):
                key = (atom.ref.dimension, direction)
                groups.setdefault(key, []).append((atom, day))
            for (_, direction), members in groups.items():
                if len(members) < 2:
                    continue
                days = [day for _, day in members]
                best = min(days) if direction == "upper" else max(days)
                for atom, day in members:
                    if day == best:
                        continue
                    yield ctx.diagnostic(
                        "SDR204",
                        f"bound [{atom}] in action {action.name!r} is "
                        "subsumed by a tighter absolute bound in the "
                        "same conjunct",
                        entry=entry,
                        span=atom.span,
                    )


# ----------------------------------------------------------------------
# SDR205 — specifications whose residual is the whole cube
# ----------------------------------------------------------------------

@checker("SDR205")
def check_always_true_residual(ctx: "LintContext") -> Iterator[Diagnostic]:
    bound = ctx.bound
    if len(bound) < 2:
        return  # with one action, SDR104 already tells the whole story
    for entry in bound:
        if any(
            profiles_overlap(p, p, ctx.dimensions, ctx.prover)
            for p in entry.profiles
        ):
            return
    names = ", ".join(
        repr(entry.action.name) for entry in bound if entry.action
    )
    yield ctx.diagnostic(
        "SDR205",
        f"every action predicate is unsatisfiable ({names}); the "
        "residual claims all facts and the specification never changes "
        "anything",
    )


# ----------------------------------------------------------------------
# SDR111 — non-distributive default aggregates (MO document level)
# ----------------------------------------------------------------------

def lint_document_measures(
    document: object, mo_file: str | None = None
) -> list[Diagnostic]:
    """Diagnostics over the raw MO document's measure declarations.

    Runs *before* MO construction so that declarations the model layer
    would reject outright (Section 3 restricts default aggregates to
    distributive functions) still surface as diagnostics.
    """
    out: list[Diagnostic] = []
    if not isinstance(document, dict):
        return out
    for measure in document.get("measures", ()):
        name = measure.get("name", "?")
        declared = measure.get("aggregate", "sum")
        try:
            aggregate = resolve_aggregate(declared)
        except MeasureError:
            out.append(
                Diagnostic(
                    "SDR111",
                    Severity.WARNING,
                    f"measure {name!r} declares unknown aggregate "
                    f"{declared!r}",
                    file=mo_file,
                )
            )
            continue
        if not aggregate.distributive:
            out.append(
                Diagnostic(
                    "SDR111",
                    Severity.WARNING,
                    f"measure {name!r} declares non-distributive default "
                    f"aggregate {aggregate.name!r}; gradual re-aggregation "
                    "would be unsound (the model layer will reject it)",
                    file=mo_file,
                    hint=RULES["SDR111"].hint,
                )
            )
    return out
