"""The fork-safe cache registry.

Forked shard workers inherit every module-level cache their parent
built.  The caches are pure, so inheriting them is never *incorrect* —
but plan caches pin parent-heap objects the child will rebuild anyway,
so workers clear them at fork time (:mod:`repro.parallel.forksafe`).

This module is the declarative half of that contract: any module that
keeps a module-level cache (an ``lru_cache``'d function, a memo dict, a
weak set of instances with per-instance memos) **registers** it here at
import time with a clearer and a size probe.  Registration buys two
things:

* :func:`clear_all` — the single sweep ``forksafe`` runs in every
  forked child (``os.register_at_fork(after_in_child=...)``);
* :func:`cache_sizes` — the probe the ``fork`` runtime sanitizer
  (``REPRO_SANITIZE=fork``) uses to *assert* the sweep actually
  emptied every cache, and that the static ``RL002`` self-check uses
  as its ground truth: a module-level cache that never calls
  :func:`register_cache` is flagged as fork-unsafe.

The module is deliberately dependency-free (imported by leaf modules
like :mod:`repro.spec.parser`), so registering can never create an
import cycle.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

#: name -> (clearer, size probe).  Names are dotted ``module:cache``
#: identifiers; re-registering a name replaces the previous entry (the
#: registering module was re-imported, e.g. under importlib.reload).
_REGISTRY: dict[str, tuple[Callable[[], None], Callable[[], int]]] = {}


def register_cache(
    name: str,
    clearer: Callable[[], None],
    size: Callable[[], int],
) -> None:
    """Declare a module-level cache as fork-safe.

    ``clearer`` empties the cache; ``size`` reports how many entries it
    currently holds (0 right after a successful clear).
    """
    _REGISTRY[name] = (clearer, size)


def registered_names() -> tuple[str, ...]:
    """The names of every registered cache, in registration order."""
    return tuple(_REGISTRY)


def clear_all() -> None:
    """Empty every registered cache (the fork-time sweep)."""
    for clearer, _ in _REGISTRY.values():
        clearer()


def cache_sizes() -> Mapping[str, int]:
    """Current entry counts, by cache name (the sanitizer's probe)."""
    return {name: size() for name, (_, size) in _REGISTRY.items()}


def iter_nonempty() -> Iterator[tuple[str, int]]:
    """Yield ``(name, size)`` for every cache that is not empty."""
    for name, (_, size) in _REGISTRY.items():
        count = size()
        if count:
            yield name, count
