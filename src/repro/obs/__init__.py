"""Observability: structured tracing and a process-local metrics registry.

The subsystem is dependency-free and always on at near-zero cost:

* :mod:`repro.obs.metrics` — counters, gauges, fixed-bucket histograms,
  exported as schema-tagged JSON snapshots and Prometheus text
  exposition format;
* :mod:`repro.obs.trace` — span-based tracing with a no-op recorder by
  default and a collecting recorder for tests and ``--stats`` CLI runs.

``disabled()`` is the kill-switch: inside the context every metric write
is dropped and every span is inert, which is also the baseline the
benchmark suite measures instrumentation overhead against.

The metric name catalogue and span taxonomy live in
``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from . import trace
from .metrics import (
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    render_snapshot,
    set_registry,
    snapshot_to_prometheus,
    snapshot_to_text,
    use_registry,
    validate_snapshot,
)
from .trace import CollectingRecorder, NoopRecorder, SpanRecord, recording, span

__all__ = [
    "SNAPSHOT_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "CollectingRecorder",
    "NoopRecorder",
    "SpanRecord",
    "disabled",
    "get_registry",
    "recording",
    "render_snapshot",
    "set_registry",
    "snapshot_to_prometheus",
    "snapshot_to_text",
    "span",
    "trace",
    "use_registry",
    "validate_snapshot",
]


@contextmanager
def disabled() -> Iterator[None]:
    """Drop all metric writes and spans for the duration of the block."""
    with use_registry(NullRegistry()), trace.use_recorder(trace.NOOP):
        yield
