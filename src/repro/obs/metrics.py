"""The metrics registry: counters, gauges, and fixed-bucket histograms.

The reduction process is irreversible (Definition 2 deletes detail after
aggregating), so the engine's operational counters — facts admitted,
aggregated, deleted, examined, migrated — are the only record of what a
run actually did.  This module holds them:

* a :class:`MetricsRegistry` maps ``(name, labels)`` to one of three
  metric kinds, Prometheus-style: monotone :class:`Counter`, free-moving
  :class:`Gauge`, and :class:`Histogram` with fixed upper-bound buckets;
* :meth:`MetricsRegistry.snapshot` renders the whole registry as a
  schema-tagged JSON document (``repro-metrics/1``) that ``repro bench``
  embeds in its ``BENCH_*.json`` trajectories;
* :func:`snapshot_to_prometheus` / :func:`snapshot_to_text` render a
  snapshot (live or loaded from an artifact) as Prometheus text
  exposition format or a human-readable table.

There is always a *current* registry (:func:`get_registry`); module-level
instrumentation (the ``reduce_mo`` backends, the SQL reducer) writes to
it, while the subcube store owns a private registry per instance so
concurrent stores never mix their gauges.  Everything here is standard
library only.
"""

from __future__ import annotations

import bisect
import json
import math
import re
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

from ..errors import ObsError

#: Schema tag of :meth:`MetricsRegistry.snapshot` documents.
SNAPSHOT_SCHEMA = "repro-metrics/1"

#: Default histogram buckets for operation durations, in seconds.
TIME_BUCKETS = (
    0.0005,
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_LabelKey = "tuple[tuple[str, str], ...]"


class Counter:
    """A monotonically increasing count (events, facts, bytes)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObsError(f"counter increment must be >= 0, got {amount}")
        self.value += amount


class Gauge:
    """A value that can go up and down (sizes, last-run statistics)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Observations bucketed under fixed upper bounds (plus ``+Inf``)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds: tuple[float, ...] = tuple(bounds)
        self.counts: list[int] = [0] * (len(self.bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            out.append((bound, running))
        out.append((math.inf, running + self.counts[-1]))
        return out

    def quantile(self, q: float) -> float | None:
        """Estimate the *q*-quantile (Prometheus ``histogram_quantile``
        style: linear interpolation inside the owning bucket, the last
        finite bound for observations in the ``+Inf`` bucket).  ``None``
        when the histogram is empty."""
        if not 0.0 <= q <= 1.0:
            raise ObsError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        running = 0
        lower = 0.0
        for bound, count in zip(self.bounds, self.counts):
            running += count
            if running >= rank:
                if count == 0:
                    return bound
                fraction = (rank - (running - count)) / count
                return lower + (bound - lower) * fraction
            lower = bound
        # The quantile falls in the +Inf bucket: the last finite bound is
        # the best (conservative) point estimate available.
        return self.bounds[-1] if self.bounds else None


class _Family:
    """All children of one metric name (one per distinct label set)."""

    __slots__ = ("name", "kind", "help", "bounds", "children")

    def __init__(
        self, name: str, kind: str, help: str, bounds: tuple[float, ...] | None
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.bounds = bounds
        self.children: dict[tuple, Counter | Gauge | Histogram] = {}


def _label_key(labels: Mapping[str, str] | None) -> _LabelKey:
    if not labels:
        return ()
    for label in labels:
        if not _LABEL_RE.match(label):
            raise ObsError(f"invalid label name {label!r}")
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricsRegistry:
    """A named collection of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Metric accessors (create-on-first-use)
    # ------------------------------------------------------------------

    def counter(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        help: str = "",
    ) -> Counter:
        metric = self._child(name, "counter", labels, help, None)
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        help: str = "",
    ) -> Gauge:
        metric = self._child(name, "gauge", labels, help, None)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        buckets: Sequence[float] = TIME_BUCKETS,
        help: str = "",
    ) -> Histogram:
        bounds = tuple(buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ObsError(f"{name}: bucket bounds must strictly increase")
        metric = self._child(name, "histogram", labels, help, bounds)
        assert isinstance(metric, Histogram)
        return metric

    def _child(
        self,
        name: str,
        kind: str,
        labels: Mapping[str, str] | None,
        help: str,
        bounds: tuple[float, ...] | None,
    ) -> Counter | Gauge | Histogram:
        key = _label_key(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                if not _NAME_RE.match(name):
                    raise ObsError(f"invalid metric name {name!r}")
                family = _Family(name, kind, help, bounds)
                self._families[name] = family
            elif family.kind != kind:
                raise ObsError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            elif kind == "histogram" and family.bounds != bounds:
                raise ObsError(
                    f"histogram {name!r} was created with buckets "
                    f"{family.bounds}, not {bounds}"
                )
            if help and not family.help:
                family.help = help
            child = family.children.get(key)
            if child is None:
                if kind == "counter":
                    child = Counter()
                elif kind == "gauge":
                    child = Gauge()
                else:
                    assert bounds is not None
                    child = Histogram(bounds)
                family.children[key] = child
            return child

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def value(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> float | None:
        """The current value of a counter or gauge, or ``None`` if the
        metric (or that label combination) was never touched."""
        family = self._families.get(name)
        if family is None:
            return None
        child = family.children.get(_label_key(labels))
        if child is None or isinstance(child, Histogram):
            return None
        return child.value

    def names(self) -> list[str]:
        return sorted(self._families)

    def samples(
        self, name: str
    ) -> Iterator[tuple[dict[str, str], Counter | Gauge | Histogram]]:
        """Every ``(labels, metric)`` child of one family, sorted."""
        family = self._families.get(name)
        if family is None:
            return
        for key in sorted(family.children):
            yield dict(key), family.children[key]

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """The whole registry as a ``repro-metrics/1`` JSON document."""
        metrics: list[dict] = []
        for name in self.names():
            family = self._families[name]
            samples: list[dict] = []
            for key in sorted(family.children):
                child = family.children[key]
                sample: dict = {"labels": dict(key)}
                if isinstance(child, Histogram):
                    sample["count"] = child.count
                    sample["sum"] = child.sum
                    sample["buckets"] = [
                        {
                            "le": "+Inf" if math.isinf(bound) else bound,
                            "count": count,
                        }
                        for bound, count in child.cumulative()
                    ]
                else:
                    sample["value"] = child.value
                samples.append(sample)
            metrics.append(
                {
                    "name": name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def to_prometheus(self) -> str:
        return snapshot_to_prometheus(self.snapshot())

    def to_text(self) -> str:
        return snapshot_to_text(self.snapshot())

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Absorb *other*: counters add, gauges take the other's value,
        histograms merge bucket-wise (bounds must match)."""
        for name in other.names():
            family = other._families[name]
            for key in sorted(family.children):
                child = family.children[key]
                labels = dict(key)
                if isinstance(child, Counter):
                    self.counter(name, labels, family.help).inc(child.value)
                elif isinstance(child, Gauge):
                    self.gauge(name, labels, family.help).set(child.value)
                else:
                    mine = self.histogram(
                        name, labels, child.bounds, family.help
                    )
                    for index, count in enumerate(child.counts):
                        mine.counts[index] += count
                    mine.sum += child.sum
                    mine.count += child.count

    def clear(self) -> None:
        with self._lock:
            self._families.clear()


class NullRegistry(MetricsRegistry):
    """A registry that drops every write — the observability kill-switch.

    ``obs.disabled()`` installs one so hot paths pay only the call-site
    cost; the shared throwaway children make every write a no-op that
    never accumulates state.
    """

    def _child(
        self,
        name: str,
        kind: str,
        labels: Mapping[str, str] | None,
        help: str,
        bounds: tuple[float, ...] | None,
    ) -> Counter | Gauge | Histogram:
        if kind == "counter":
            return _NULL_COUNTER
        if kind == "gauge":
            return _NULL_GAUGE
        return Histogram(bounds if bounds is not None else TIME_BUCKETS)

    def snapshot(self) -> dict:
        return {"schema": SNAPSHOT_SCHEMA, "metrics": []}


_NULL_COUNTER = Counter()
_NULL_GAUGE = Gauge()


# ----------------------------------------------------------------------
# The current registry
# ----------------------------------------------------------------------

_DEFAULT = MetricsRegistry()
_current: MetricsRegistry = _DEFAULT


def get_registry() -> MetricsRegistry:
    """The registry module-level instrumentation currently writes to."""
    return _current


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as current; returns the previous one."""
    global _current
    previous = _current
    _current = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Scope the current registry to a ``with`` block (tests, CLI runs)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Snapshot renderers (work on live registries and loaded artifacts alike)
# ----------------------------------------------------------------------

def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_text(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in sorted(labels.items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def validate_snapshot(document: Mapping) -> None:
    """Raise :class:`~repro.errors.ObsError` unless *document* is a
    structurally valid ``repro-metrics/1`` snapshot."""
    if document.get("schema") != SNAPSHOT_SCHEMA:
        raise ObsError(
            f"not a metrics snapshot (schema={document.get('schema')!r})"
        )
    metrics = document.get("metrics")
    if not isinstance(metrics, list):
        raise ObsError("snapshot 'metrics' must be a list")
    for family in metrics:
        name = family.get("name")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise ObsError(f"invalid metric name {name!r}")
        if family.get("type") not in ("counter", "gauge", "histogram"):
            raise ObsError(f"{name}: invalid type {family.get('type')!r}")
        samples = family.get("samples")
        if not isinstance(samples, list):
            raise ObsError(f"{name}: 'samples' must be a list")
        for sample in samples:
            if not isinstance(sample.get("labels"), dict):
                raise ObsError(f"{name}: sample 'labels' must be an object")
            if family["type"] == "histogram":
                if not isinstance(sample.get("buckets"), list):
                    raise ObsError(f"{name}: histogram sample needs buckets")
            elif not isinstance(sample.get("value"), (int, float)):
                raise ObsError(f"{name}: sample 'value' must be a number")


def snapshot_to_prometheus(document: Mapping) -> str:
    """Render a snapshot in Prometheus text exposition format 0.0.4."""
    validate_snapshot(document)
    lines: list[str] = []
    for family in document["metrics"]:
        name = family["name"]
        if family.get("help"):
            help_text = str(family["help"]).replace("\\", "\\\\")
            lines.append(f"# HELP {name} " + help_text.replace("\n", "\\n"))
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                for bucket in sample["buckets"]:
                    le = bucket["le"]
                    le_text = le if isinstance(le, str) else _format_value(le)
                    lines.append(
                        f"{name}_bucket"
                        + _labels_text(labels, f'le="{le_text}"')
                        + f" {bucket['count']}"
                    )
                lines.append(
                    f"{name}_sum{_labels_text(labels)} "
                    f"{_format_value(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_labels_text(labels)} {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} "
                    f"{_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def snapshot_to_text(document: Mapping) -> str:
    """Render a snapshot as a compact human-readable table."""
    validate_snapshot(document)
    lines: list[str] = []
    for family in document["metrics"]:
        name = family["name"]
        for sample in family["samples"]:
            labels = _labels_text(sample["labels"])
            if family["type"] == "histogram":
                count = sample["count"]
                total = sample["sum"]
                mean = (total / count) if count else 0.0
                lines.append(
                    f"{name}{labels}  count={count} sum={total:.6f} "
                    f"mean={mean:.6f}"
                )
            else:
                lines.append(
                    f"{name}{labels}  {_format_value(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


def snapshot_to_json(document: Mapping) -> str:
    validate_snapshot(document)
    return json.dumps(document, indent=1, sort_keys=True)


#: Renderer dispatch used by the CLI's ``--stats-format`` option.
RENDERERS = {
    "json": snapshot_to_json,
    "prom": snapshot_to_prometheus,
    "text": snapshot_to_text,
}


def render_snapshot(document: Mapping, format: str) -> str:
    try:
        renderer = RENDERERS[format]
    except KeyError:
        raise ObsError(
            f"unknown stats format {format!r}; expected one of "
            f"{sorted(RENDERERS)}"
        ) from None
    return renderer(document)
