"""Span-based tracing with a zero-overhead no-op recorder by default.

A *span* covers one operation — ``reduce.run``, ``sync.run``,
``query.store`` — with attributes, wall-clock start time, and a monotonic
duration.  The default recorder (:data:`NOOP`) returns a shared inert
context manager, so instrumented hot paths pay only the call-site cost
(one function call and a kwargs dict) when tracing is off; installing a
:class:`CollectingRecorder` (tests, ``--stats`` CLI runs) records every
finished span with its parent, timing, and error status.

Span names are dotted, coarsest first (``reduce.columnar.fold``); the
taxonomy is catalogued in ``docs/observability.md``.  Spans are
per-operation, never per-fact — the benchmark suite asserts the recorder
count stays O(actions), and that the no-op recorder stays within 2% of a
fully disabled run on the columnar hot path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class SpanRecord:
    """One finished span, as kept by :class:`CollectingRecorder`."""

    span_id: int
    name: str
    attributes: dict[str, object]
    start_wall: float
    start_monotonic: float
    parent_id: int | None = None
    duration: float | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _NoopSpan:
    """The shared inert span the no-op recorder hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set_attribute(self, name: str, value: object) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class NoopRecorder:
    """Records nothing; every span is the shared inert context manager."""

    def span(self, name: str, **attributes: object) -> _NoopSpan:
        return _NOOP_SPAN


class _ActiveSpan:
    """A live span of a :class:`CollectingRecorder`."""

    __slots__ = ("_recorder", "record")

    def __init__(self, recorder: "CollectingRecorder", record: SpanRecord):
        self._recorder = recorder
        self.record = record

    def set_attribute(self, name: str, value: object) -> None:
        self.record.attributes[name] = value

    def __enter__(self) -> "_ActiveSpan":
        self._recorder._stack.append(self.record.span_id)
        return self

    def __exit__(self, exc_type, exc, traceback) -> bool:
        self.record.duration = (
            time.perf_counter() - self.record.start_monotonic
        )
        if exc is not None:
            self.record.error = f"{type(exc).__name__}: {exc}"
        stack = self._recorder._stack
        if stack and stack[-1] == self.record.span_id:
            stack.pop()
        self._recorder.spans.append(self.record)
        return False


@dataclass
class CollectingRecorder:
    """Keeps every finished span, in completion order."""

    spans: list[SpanRecord] = field(default_factory=list)
    _stack: list[int] = field(default_factory=list)
    _next_id: int = 1

    def span(self, name: str, **attributes: object) -> _ActiveSpan:
        span_id = self._next_id
        self._next_id += 1
        record = SpanRecord(
            span_id=span_id,
            name=name,
            attributes=dict(attributes),
            start_wall=time.time(),
            start_monotonic=time.perf_counter(),
            parent_id=self._stack[-1] if self._stack else None,
        )
        return _ActiveSpan(self, record)

    def find(self, name: str) -> list[SpanRecord]:
        """All finished spans with the given name."""
        return [span for span in self.spans if span.name == name]

    def names(self) -> list[str]:
        return sorted({span.name for span in self.spans})


#: The default, zero-overhead recorder.
NOOP = NoopRecorder()

_recorder: NoopRecorder | CollectingRecorder = NOOP


def get_recorder() -> NoopRecorder | CollectingRecorder:
    return _recorder


def set_recorder(
    recorder: NoopRecorder | CollectingRecorder,
) -> NoopRecorder | CollectingRecorder:
    """Install *recorder*; returns the previous one."""
    global _recorder
    previous = _recorder
    _recorder = recorder
    return previous


@contextmanager
def use_recorder(
    recorder: NoopRecorder | CollectingRecorder,
) -> Iterator[NoopRecorder | CollectingRecorder]:
    previous = set_recorder(recorder)
    try:
        yield recorder
    finally:
        set_recorder(previous)


@contextmanager
def recording() -> Iterator[CollectingRecorder]:
    """Collect spans for the duration of a ``with`` block."""
    with use_recorder(CollectingRecorder()) as recorder:
        yield recorder  # type: ignore[misc]


def span(name: str, **attributes: object) -> object:
    """Open a span on the current recorder (usable as a context manager)."""
    return _recorder.span(name, **attributes)
