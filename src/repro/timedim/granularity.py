"""Time granularities of the paper's Time dimension.

The paper's Time dimension type has the non-linear hierarchy::

    day < month < quarter < year < T      and      day < week < T

so ``week`` sits on a parallel branch — the source of the interesting
varying-granularity cases in Sections 4.3 and 6.
"""

from __future__ import annotations

import enum

from ..errors import SchemaError

DAY = "day"
WEEK = "week"
MONTH = "month"
QUARTER = "quarter"
YEAR = "year"

#: Category chains of the standard Time dimension type (finest first).
TIME_CHAINS: tuple[tuple[str, ...], ...] = (
    (DAY, MONTH, QUARTER, YEAR),
    (DAY, WEEK),
)

#: All time category names, finest first along the calendar branch.
TIME_CATEGORIES: tuple[str, ...] = (DAY, WEEK, MONTH, QUARTER, YEAR)


class TimeUnit(enum.Enum):
    """Units usable in time spans (``2 days``, ``4 quarters``, ...)."""

    DAYS = DAY
    WEEKS = WEEK
    MONTHS = MONTH
    QUARTERS = QUARTER
    YEARS = YEAR

    @property
    def category(self) -> str:
        return self.value


_UNIT_ALIASES = {
    "day": TimeUnit.DAYS,
    "days": TimeUnit.DAYS,
    "week": TimeUnit.WEEKS,
    "weeks": TimeUnit.WEEKS,
    "month": TimeUnit.MONTHS,
    "months": TimeUnit.MONTHS,
    "quarter": TimeUnit.QUARTERS,
    "quarters": TimeUnit.QUARTERS,
    "year": TimeUnit.YEARS,
    "years": TimeUnit.YEARS,
}


def parse_time_unit(text: str) -> TimeUnit:
    """Parse a time-unit word (singular or plural, case-insensitive)."""
    try:
        return _UNIT_ALIASES[text.strip().lower()]
    except KeyError:
        raise SchemaError(f"unknown time unit {text!r}") from None


def is_time_category(category: str) -> bool:
    """Whether *category* is one of the five standard time categories."""
    return category in TIME_CATEGORIES
