"""The ``NOW`` variable and time-typed expressions (``tt`` in Table 1).

A time term is either an absolute value of some time category or a
``NOW +/- span`` expression.  Following Clifford et al. [4] (the paper's
reference for dynamic actions), ``NOW`` is bound to the evaluation time
``t``; a ``NOW``-relative term evaluated *at category c* denotes the
``c``-value containing the shifted date.  This rule reproduces every
worked example in the paper (e.g. at ``t = 2000/11/5``,
``NOW - 4 quarters`` at category ``quarter`` is ``1999Q4``).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from ..errors import SpecSyntaxError
from .calendar import parse_value, value_at
from .spans import TimeSpan


@dataclass(frozen=True)
class TimeTerm:
    """Base class for time-typed terms."""

    def evaluate(self, now: _dt.date, category: str) -> str:
        raise NotImplementedError

    @property
    def is_now_relative(self) -> bool:
        raise NotImplementedError


@dataclass(frozen=True)
class AbsoluteTime(TimeTerm):
    """A literal time value, e.g. ``1999/12`` at category ``month``."""

    category: str
    value: str

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "value", parse_value(self.category, self.value)
        )

    def evaluate(self, now: _dt.date, category: str) -> str:
        if category != self.category:
            raise SpecSyntaxError(
                f"time literal {self.value!r} has category {self.category!r}, "
                f"but the predicate compares at {category!r}"
            )
        return self.value

    @property
    def is_now_relative(self) -> bool:
        return False

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class NowRelative(TimeTerm):
    """``NOW - span`` or ``NOW + span`` (``NOW`` itself has a zero span)."""

    sign: int = 0  # -1, 0, or +1
    span: TimeSpan | None = None

    def __post_init__(self) -> None:
        if self.sign not in (-1, 0, 1):
            raise SpecSyntaxError(f"invalid NOW offset sign {self.sign!r}")
        if (self.sign == 0) != (self.span is None):
            raise SpecSyntaxError("NOW offset needs both a sign and a span")

    def shifted_date(self, now: _dt.date) -> _dt.date:
        if self.span is None:
            return now
        return self.span.shift(now, self.sign)

    def evaluate(self, now: _dt.date, category: str) -> str:
        return value_at(self.shifted_date(now), category)

    @property
    def is_now_relative(self) -> bool:
        return True

    def offset_days(self) -> int:
        """Signed day-scale estimate of the offset (ordering heuristic)."""
        if self.span is None:
            return 0
        return self.sign * self.span.approximate_days()

    def __str__(self) -> str:
        if self.span is None:
            return "NOW"
        op = "-" if self.sign < 0 else "+"
        return f"NOW {op} {self.span}"


NOW = NowRelative()
