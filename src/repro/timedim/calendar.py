"""Calendar arithmetic and canonical encodings for time values.

Values are canonical zero-padded strings so that plain string order equals
temporal order within each category:

=========  ==================  =================
category   canonical form      example
=========  ==================  =================
day        ``YYYY/MM/DD``      ``1999/12/04``
week       ``YYYYWww`` (ISO)   ``2000W01``
month      ``YYYY/MM``         ``1999/11``
quarter    ``YYYYQq``          ``1999Q4``
year       ``YYYY``            ``1999``
=========  ==================  =================

The paper prints values unpadded (``2000/1/4``); :func:`display` renders
that style, :func:`parse_value` accepts both.
"""

from __future__ import annotations

import datetime as _dt
import functools
import re

from .._forkreg import register_cache
from ..errors import DimensionError
from .granularity import DAY, MONTH, QUARTER, WEEK, YEAR

_DAY_RE = re.compile(r"^(\d{4})/(\d{1,2})/(\d{1,2})$")
_WEEK_RE = re.compile(r"^(\d{4})W(\d{1,2})$")
_MONTH_RE = re.compile(r"^(\d{4})/(\d{1,2})$")
_QUARTER_RE = re.compile(r"^(\d{4})Q([1-4])$")
_YEAR_RE = re.compile(r"^(\d{4})$")


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------

def day_value(date: _dt.date) -> str:
    """Canonical ``YYYY/MM/DD`` encoding of *date*."""
    return f"{date.year:04d}/{date.month:02d}/{date.day:02d}"


def week_value(date: _dt.date) -> str:
    """Canonical ISO-week encoding ``YYYYWww`` of *date*."""
    iso_year, iso_week, _ = date.isocalendar()
    return f"{iso_year:04d}W{iso_week:02d}"


def month_value(date: _dt.date) -> str:
    """Canonical ``YYYY/MM`` encoding of *date*."""
    return f"{date.year:04d}/{date.month:02d}"


def quarter_value(date: _dt.date) -> str:
    """Canonical ``YYYYQq`` encoding of *date*."""
    return f"{date.year:04d}Q{(date.month - 1) // 3 + 1}"


def year_value(date: _dt.date) -> str:
    """Canonical ``YYYY`` encoding of *date*."""
    return f"{date.year:04d}"


_ENCODERS = {
    DAY: day_value,
    WEEK: week_value,
    MONTH: month_value,
    QUARTER: quarter_value,
    YEAR: year_value,
}


def value_at(date: _dt.date, category: str) -> str:
    """The canonical *category* value containing *date*."""
    try:
        encoder = _ENCODERS[category]
    except KeyError:
        raise DimensionError(f"not a time category: {category!r}") from None
    return encoder(date)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=65536)
def parse_day(value: str) -> _dt.date:
    """Parse a padded or paper-style day value into a date."""
    match = _DAY_RE.match(value)
    if not match:
        raise DimensionError(f"not a day value: {value!r}")
    year, month, day = (int(g) for g in match.groups())
    return _dt.date(year, month, day)


@functools.lru_cache(maxsize=65536)
def parse_value(category: str, value: str) -> str:
    """Normalize *value* (padded or paper-style) to canonical form."""
    if category == DAY:
        return day_value(parse_day(value))
    if category == WEEK:
        match = _WEEK_RE.match(value)
        if not match:
            raise DimensionError(f"not a week value: {value!r}")
        year, week = int(match.group(1)), int(match.group(2))
        if not 1 <= week <= 53:
            raise DimensionError(f"week out of range: {value!r}")
        return f"{year:04d}W{week:02d}"
    if category == MONTH:
        match = _MONTH_RE.match(value)
        if not match:
            raise DimensionError(f"not a month value: {value!r}")
        year, month = int(match.group(1)), int(match.group(2))
        if not 1 <= month <= 12:
            raise DimensionError(f"month out of range: {value!r}")
        return f"{year:04d}/{month:02d}"
    if category == QUARTER:
        match = _QUARTER_RE.match(value)
        if not match:
            raise DimensionError(f"not a quarter value: {value!r}")
        return f"{int(match.group(1)):04d}Q{match.group(2)}"
    if category == YEAR:
        match = _YEAR_RE.match(value)
        if not match:
            raise DimensionError(f"not a year value: {value!r}")
        return f"{int(match.group(1)):04d}"
    raise DimensionError(f"not a time category: {category!r}")


def display(category: str, value: str) -> str:
    """Render a canonical value in the paper's unpadded style."""
    if category == DAY:
        date = parse_day(value)
        return f"{date.year}/{date.month}/{date.day}"
    if category == MONTH:
        year, month = value.split("/")
        return f"{int(year)}/{int(month)}"
    if category == WEEK:
        year, week = value.split("W")
        return f"{int(year)}W{int(week)}"
    return value


# ----------------------------------------------------------------------
# Ordinals and extents
# ----------------------------------------------------------------------

@functools.lru_cache(maxsize=65536)
def ordinal(category: str, value: str) -> int:
    """An integer preserving temporal order within *category*."""
    value = parse_value(category, value)
    if category == DAY:
        return parse_day(value).toordinal()
    if category == WEEK:
        year, week = value.split("W")
        # Monday of the ISO week, as a day ordinal, keeps weeks and days on
        # comparable scales without a second axis.
        return _dt.date.fromisocalendar(int(year), int(week), 1).toordinal()
    if category == MONTH:
        year, month = value.split("/")
        return int(year) * 12 + int(month) - 1
    if category == QUARTER:
        year, quarter = value.split("Q")
        return int(year) * 4 + int(quarter) - 1
    return int(value)  # YEAR


@functools.lru_cache(maxsize=65536)
def first_day(category: str, value: str) -> _dt.date:
    """The first calendar day contained in *value*."""
    value = parse_value(category, value)
    if category == DAY:
        return parse_day(value)
    if category == WEEK:
        year, week = value.split("W")
        return _dt.date.fromisocalendar(int(year), int(week), 1)
    if category == MONTH:
        year, month = value.split("/")
        return _dt.date(int(year), int(month), 1)
    if category == QUARTER:
        year, quarter = value.split("Q")
        return _dt.date(int(year), (int(quarter) - 1) * 3 + 1, 1)
    return _dt.date(int(value), 1, 1)  # YEAR


@functools.lru_cache(maxsize=65536)
def last_day(category: str, value: str) -> _dt.date:
    """The last calendar day contained in *value*."""
    value = parse_value(category, value)
    if category == DAY:
        return parse_day(value)
    if category == WEEK:
        year, week = value.split("W")
        return _dt.date.fromisocalendar(int(year), int(week), 7)
    if category == MONTH:
        year_i, month_i = (int(p) for p in value.split("/"))
        if month_i == 12:
            return _dt.date(year_i, 12, 31)
        return _dt.date(year_i, month_i + 1, 1) - _dt.timedelta(days=1)
    if category == QUARTER:
        year_i, quarter_i = int(value[:4]), int(value[-1])
        last_month = quarter_i * 3
        return last_day(MONTH, f"{year_i:04d}/{last_month:02d}")
    return _dt.date(int(value), 12, 31)  # YEAR


# ----------------------------------------------------------------------
# Date arithmetic
# ----------------------------------------------------------------------

def add_months(date: _dt.date, months: int) -> _dt.date:
    """Shift *date* by whole months, clamping the day-of-month."""
    index = date.year * 12 + (date.month - 1) + months
    year, month0 = divmod(index, 12)
    month = month0 + 1
    day = min(date.day, _days_in_month(year, month))
    return _dt.date(year, month, day)


def _days_in_month(year: int, month: int) -> int:
    if month == 12:
        return 31
    return (_dt.date(year, month + 1, 1) - _dt.timedelta(days=1)).day


def days_between(start: _dt.date, end: _dt.date) -> int:
    """Signed day count from *start* to *end*."""
    return (end - start).days


def iter_days(start: _dt.date, end: _dt.date):
    """Yield every date in ``[start, end]`` inclusive."""
    current = start
    one = _dt.timedelta(days=1)
    while current <= end:
        yield current
        current += one


# ----------------------------------------------------------------------
# Fork hygiene
# ----------------------------------------------------------------------

#: The memoized calendar functions (pure: value text -> date/ordinal).
_CACHED_FUNCTIONS = (parse_day, parse_value, ordinal, first_day, last_day)


def clear_calendar_caches() -> None:
    """Drop every memoized calendar lookup (fork hygiene only)."""
    for function in _CACHED_FUNCTIONS:
        function.cache_clear()


def _calendar_cache_entries() -> int:
    return sum(f.cache_info().currsize for f in _CACHED_FUNCTIONS)


register_cache(
    "repro.timedim.calendar:memos",
    clear_calendar_caches,
    _calendar_cache_entries,
)
