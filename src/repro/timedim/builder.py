"""Builders for the standard Time dimension over a date range."""

from __future__ import annotations

import datetime as _dt
from typing import Iterable

from ..core.builder import dimension_from_rows, dimension_type_from_chains
from ..core.dimension import Dimension
from ..core.schema import DimensionType
from ..errors import DimensionError
from .calendar import (
    day_value,
    iter_days,
    month_value,
    ordinal,
    parse_day,
    quarter_value,
    week_value,
    year_value,
)
from .granularity import (
    DAY,
    MONTH,
    QUARTER,
    TIME_CHAINS,
    WEEK,
    YEAR,
    is_time_category,
)


def time_dimension_type(name: str = "Time") -> DimensionType:
    """The paper's Time dimension type: day < month < quarter < year,
    day < week (parallel branch)."""
    return dimension_type_from_chains(name, TIME_CHAINS)


def time_sort_key(category: str, value: str) -> object:
    """Order time values temporally; leave foreign values untouched."""
    if is_time_category(category):
        return ordinal(category, value)
    return value


def time_normalizer(value: str):
    """Canonical-form candidates for a raw time value of any category.

    Tries each time category in turn (day first), yielding every encoding
    that parses; the dimension picks the first candidate it actually
    holds.
    """
    from ..timedim.calendar import parse_value

    for category in (DAY, WEEK, MONTH, QUARTER, YEAR):
        try:
            yield parse_value(category, value)
        except Exception:
            continue


def day_row(date: _dt.date) -> dict[str, str]:
    """The Table 2-style dimension row for one calendar day."""
    return {
        DAY: day_value(date),
        WEEK: week_value(date),
        MONTH: month_value(date),
        QUARTER: quarter_value(date),
        YEAR: year_value(date),
    }


def build_time_dimension(
    start: _dt.date | str,
    end: _dt.date | str,
    name: str = "Time",
) -> Dimension:
    """Materialize a Time dimension covering every day in ``[start, end]``."""
    start_date = parse_day(start) if isinstance(start, str) else start
    end_date = parse_day(end) if isinstance(end, str) else end
    if end_date < start_date:
        raise DimensionError(f"empty time range: {start_date} .. {end_date}")
    rows = (day_row(date) for date in iter_days(start_date, end_date))
    return dimension_from_rows(
        time_dimension_type(name), rows, time_sort_key, time_normalizer
    )


def build_sparse_time_dimension(
    days: Iterable[_dt.date | str], name: str = "Time"
) -> Dimension:
    """Materialize a Time dimension holding only the given days.

    The paper's running example uses exactly such a sparse dimension (seven
    facts over five distinct days); the figures' drill-down examples rely on
    quarters "containing only 3 days" there.
    """
    rows = []
    for day in days:
        date = parse_day(day) if isinstance(day, str) else day
        rows.append(day_row(date))
    if not rows:
        raise DimensionError("sparse time dimension needs at least one day")
    return dimension_from_rows(
        time_dimension_type(name), rows, time_sort_key, time_normalizer
    )
