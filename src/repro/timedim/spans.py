"""Unanchored time spans (the paper's set ``S``: ``2 days``, ``3 years``).

Spans appear in ``NOW``-relative predicate bounds (``NOW - 6 months``).
Arithmetic follows calendar conventions: months/quarters/years shift by
whole months with day-of-month clamping, weeks/days shift by exact days.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass

from ..errors import SpecSyntaxError
from .calendar import add_months
from .granularity import TimeUnit, parse_time_unit

_SPAN_RE = re.compile(r"^\s*(\d+)\s*([A-Za-z]+)\s*$")


@dataclass(frozen=True, order=False)
class TimeSpan:
    """``count`` units of ``unit`` (always non-negative)."""

    count: int
    unit: TimeUnit

    def __post_init__(self) -> None:
        if self.count < 0:
            raise SpecSyntaxError(f"negative time span: {self.count}")

    @staticmethod
    def parse(text: str) -> "TimeSpan":
        match = _SPAN_RE.match(text)
        if not match:
            raise SpecSyntaxError(f"not a time span: {text!r}")
        return TimeSpan(int(match.group(1)), parse_time_unit(match.group(2)))

    def subtract_from(self, date: _dt.date) -> _dt.date:
        """``date - span`` under calendar arithmetic."""
        return self.shift(date, -1)

    def add_to(self, date: _dt.date) -> _dt.date:
        """``date + span`` under calendar arithmetic."""
        return self.shift(date, +1)

    def shift(self, date: _dt.date, sign: int) -> _dt.date:
        amount = sign * self.count
        if self.unit is TimeUnit.DAYS:
            return date + _dt.timedelta(days=amount)
        if self.unit is TimeUnit.WEEKS:
            return date + _dt.timedelta(weeks=amount)
        if self.unit is TimeUnit.MONTHS:
            return add_months(date, amount)
        if self.unit is TimeUnit.QUARTERS:
            return add_months(date, 3 * amount)
        return add_months(date, 12 * amount)  # YEARS

    def approximate_days(self) -> int:
        """A monotone day-scale estimate, used only for ordering heuristics."""
        per_unit = {
            TimeUnit.DAYS: 1,
            TimeUnit.WEEKS: 7,
            TimeUnit.MONTHS: 30,
            TimeUnit.QUARTERS: 91,
            TimeUnit.YEARS: 365,
        }
        return self.count * per_unit[self.unit]

    def __str__(self) -> str:
        noun = self.unit.category if self.count == 1 else self.unit.category + "s"
        return f"{self.count} {noun}"
