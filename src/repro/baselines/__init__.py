"""Comparison baselines for the storage/accuracy benchmarks.

The paper positions specification-based *aggregation* against simpler
retention schemes; these baselines implement the alternatives its related
-work section discusses so the benchmark harness can compare:

* :mod:`no_reduction` — keep everything (the status quo the paper argues
  is unsustainable);
* :mod:`vacuuming` — delete old detail outright (Skyt & Jensen [16]);
* :mod:`view_expiry` — keep a fixed materialized aggregate view and
  expire the base data feeding it (Garcia-Molina et al. [6]).
"""

from .no_reduction import NoReductionBaseline
from .vacuuming import VacuumingBaseline
from .view_expiry import ViewExpiryBaseline

__all__ = [
    "NoReductionBaseline",
    "VacuumingBaseline",
    "ViewExpiryBaseline",
]
