"""Baseline: materialized-view expiry (Garcia-Molina et al., reference [6]).

One fixed aggregate view (a chosen granularity) is maintained for all
data; base facts older than a cutoff are expired (deleted) once their
contribution is folded into the view.  Unlike the paper's technique the
level of detail is fixed up-front and cannot vary with age.
"""

from __future__ import annotations

import datetime as _dt
from typing import Mapping

from ..core.facts import Provenance, aggregate_fact_id
from ..core.mo import MultidimensionalObject
from ..timedim.spans import TimeSpan


class ViewExpiryBaseline:
    """Maintain ``a[view_granularity](O)`` and expire old base facts."""

    name = "view-expiry"

    def __init__(
        self,
        mo: MultidimensionalObject,
        time_dimension: str,
        horizon: TimeSpan,
        view_granularity: Mapping[str, str],
    ) -> None:
        self._mo = mo
        self._time_dimension = time_dimension
        self._horizon = horizon
        self._view_granularity = mo.schema.validate_granularity(
            dict(view_granularity)
        )

    @property
    def mo(self) -> MultidimensionalObject:
        return self._mo

    def advance_to(self, now: _dt.date) -> MultidimensionalObject:
        from ..timedim.calendar import day_value

        cutoff = day_value(self._horizon.subtract_from(now))
        dimension = self._mo.dimensions[self._time_dimension]
        bottom = dimension.bottom_category
        names = self._mo.schema.dimension_names

        expiring: dict[tuple[str, ...], list[str]] = {}
        for fact_id in self._mo.facts():
            direct = self._mo.direct_value(fact_id, self._time_dimension)
            day = dimension.try_ancestor_at(direct, bottom)
            if day is None or day >= cutoff:
                continue
            cell = []
            for name, category in zip(names, self._view_granularity):
                value = self._mo.characterizing_value(fact_id, name, category)
                if value is None:
                    value = self._mo.direct_value(fact_id, name)
                cell.append(value)
            expiring.setdefault(tuple(cell), []).append(fact_id)

        for cell, members in expiring.items():
            measures = {
                name: self._mo.measures[name].aggregate_over(members)
                for name in self._mo.schema.measure_names
            }
            provenance = Provenance()
            for member in members:
                provenance = provenance.merge(self._mo.provenance(member))
                self._mo.delete_fact(member)
            view_id = aggregate_fact_id(("view", *cell))
            if view_id in self._mo:
                merged = {
                    name: self._mo.measures[name].aggregate(
                        [self._mo.measure_value(view_id, name), measures[name]]
                    )
                    for name in self._mo.schema.measure_names
                }
                existing = self._mo.provenance(view_id)
                self._mo.delete_fact(view_id)
                self._mo.insert_aggregate_fact(
                    view_id,
                    dict(zip(names, cell)),
                    merged,
                    existing.merge(provenance),
                )
            else:
                self._mo.insert_aggregate_fact(
                    view_id, dict(zip(names, cell)), measures, provenance
                )
        return self._mo

    def fact_count(self) -> int:
        return self._mo.n_facts

    def total(self, measure: str):
        return self._mo.total(measure)
