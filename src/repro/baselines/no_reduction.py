"""Baseline: no reduction at all — the warehouse keeps every detail fact."""

from __future__ import annotations

import datetime as _dt

from ..core.mo import MultidimensionalObject


class NoReductionBaseline:
    """Keep everything; storage grows linearly with load."""

    name = "no-reduction"

    def __init__(self, mo: MultidimensionalObject) -> None:
        self._mo = mo

    @property
    def mo(self) -> MultidimensionalObject:
        return self._mo

    def advance_to(self, now: _dt.date) -> MultidimensionalObject:
        return self._mo

    def fact_count(self) -> int:
        return self._mo.n_facts

    def total(self, measure: str):
        return self._mo.total(measure)
