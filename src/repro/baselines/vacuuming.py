"""Baseline: deletion-based vacuuming (the paper's reference [16]).

Facts older than a cutoff are physically deleted — maximal storage
savings, but the high-level information is lost with them.  The storage
benchmark contrasts this with specification-based aggregation, which
keeps exact higher-level aggregates at a modest storage premium.
"""

from __future__ import annotations

import datetime as _dt

from ..core.mo import MultidimensionalObject
from ..timedim.spans import TimeSpan


class VacuumingBaseline:
    """Delete every fact whose time value lies before ``NOW - horizon``."""

    name = "vacuuming"

    def __init__(
        self,
        mo: MultidimensionalObject,
        time_dimension: str,
        horizon: TimeSpan,
    ) -> None:
        self._mo = mo
        self._time_dimension = time_dimension
        self._horizon = horizon

    @property
    def mo(self) -> MultidimensionalObject:
        return self._mo

    def advance_to(self, now: _dt.date) -> MultidimensionalObject:
        from ..timedim.calendar import day_value

        cutoff = day_value(self._horizon.subtract_from(now))
        dimension = self._mo.dimensions[self._time_dimension]
        bottom = dimension.bottom_category
        doomed = [
            fact_id
            for fact_id in self._mo.facts()
            if dimension.try_ancestor_at(
                self._mo.direct_value(fact_id, self._time_dimension), bottom
            )
            is not None
            and dimension.ancestor_at(
                self._mo.direct_value(fact_id, self._time_dimension), bottom
            )
            < cutoff
        ]
        for fact_id in doomed:
            self._mo.delete_fact(fact_id)
        return self._mo

    def fact_count(self) -> int:
        return self._mo.n_facts

    def total(self, measure: str):
        return self._mo.total(measure)
