"""Measures and distributive aggregate functions (Section 3).

A measure maps facts to values in some domain and carries a *default
aggregate function* that the paper requires to be distributive: the
aggregate of a union of multisets must be computable from the aggregates of
the parts.  This is what makes both gradual re-aggregation (Definition 2)
and the two-step subcube combination of Section 7.3 sound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..errors import MeasureError


@dataclass(frozen=True)
class AggregateFunction:
    """A named aggregate over multisets of measure values.

    ``fold`` combines a non-empty iterable of values into one value.  For a
    distributive function, folding partial aggregates gives the same result
    as folding all the raw values, which we rely on (and property-test).
    """

    name: str
    fold: Callable[[Iterable], object]
    distributive: bool = True

    def __call__(self, values: Iterable) -> object:
        vals = list(values)
        if not vals:
            raise MeasureError(f"aggregate {self.name!r} applied to an empty multiset")
        return self.fold(vals)


SUM = AggregateFunction("sum", lambda vs: sum(vs))
COUNT = AggregateFunction("count", lambda vs: sum(vs))
MIN = AggregateFunction("min", min)
MAX = AggregateFunction("max", max)

#: AVG is *algebraic*, not distributive; it is here only so that the schema
#: validation has a concrete non-distributive function to reject, mirroring
#: the paper's restriction to distributive defaults.
AVG = AggregateFunction(
    "avg", lambda vs: sum(vs) / len(list(vs)), distributive=False
)

_REGISTRY: dict[str, AggregateFunction] = {
    f.name: f for f in (SUM, COUNT, MIN, MAX, AVG)
}


def resolve_aggregate(name: str) -> AggregateFunction:
    """Look up an aggregate function by name (case-insensitive)."""
    try:
        return _REGISTRY[name.lower()]
    except KeyError:
        raise MeasureError(f"unknown aggregate function {name!r}") from None


def register_aggregate(function: AggregateFunction) -> None:
    """Register a user-defined aggregate function by its name."""
    _REGISTRY[function.name.lower()] = function


class Measure:
    """A measure instance: fact id -> value, typed by a measure type name."""

    def __init__(
        self,
        name: str,
        aggregate: AggregateFunction,
        values: Mapping[str, object] | None = None,
    ) -> None:
        if not aggregate.distributive:
            raise MeasureError(
                f"measure {name!r}: default aggregate must be distributive"
            )
        self.name = name
        self.aggregate = aggregate
        self._values: dict[str, object] = dict(values or {})

    def __getitem__(self, fact_id: str) -> object:
        try:
            return self._values[fact_id]
        except KeyError:
            raise MeasureError(
                f"measure {self.name!r} has no value for fact {fact_id!r}"
            ) from None

    def __contains__(self, fact_id: str) -> bool:
        return fact_id in self._values

    def __len__(self) -> int:
        return len(self._values)

    def set(self, fact_id: str, value: object) -> None:
        self._values[fact_id] = value

    def discard(self, fact_id: str) -> None:
        self._values.pop(fact_id, None)

    def items(self) -> Iterable[tuple[str, object]]:
        return self._values.items()

    def aggregate_over(self, fact_ids: Iterable[str]) -> object:
        """Apply the default aggregate to the multiset ``{M(f) | f in ids}``."""
        return self.aggregate(self[fid] for fid in fact_ids)

    def restrict(self, fact_ids: Iterable[str]) -> "Measure":
        """The measure restricted to *fact_ids* (used by selection, Eq. 36)."""
        keep = set(fact_ids)
        return Measure(
            self.name,
            self.aggregate,
            {fid: v for fid, v in self._values.items() if fid in keep},
        )

    def copy(self) -> "Measure":
        return Measure(self.name, self.aggregate, self._values)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Measure({self.name}, agg={self.aggregate.name}, n={len(self)})"
