"""Facts and fact-dimension relations (Section 3).

Facts are objects with unique identity; we represent them by string ids.
A fact-dimension relation ``R_i`` links each fact to exactly one dimension
value per dimension (missing values map to the top value ``T``).  Facts
inserted by users must map to bottom-category values; facts produced by the
reduction facilities may map to values in any category — the model's
"more general capability" that data reduction exploits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..errors import FactError


@dataclass(frozen=True)
class FactCoordinates:
    """The direct dimension values of a fact, ordered like the schema."""

    values: tuple[str, ...]

    def __iter__(self) -> Iterator[str]:
        return iter(self.values)

    def __getitem__(self, index: int) -> str:
        return self.values[index]


class FactDimensionRelation:
    """One relation ``R_i = {(f, v)}`` between facts and one dimension.

    The paper requires each fact to appear exactly once per dimension, so
    the relation is a function from fact id to value.
    """

    def __init__(self, dimension_name: str) -> None:
        self.dimension_name = dimension_name
        self._value_of: dict[str, str] = {}

    def link(self, fact_id: str, value: str) -> None:
        existing = self._value_of.get(fact_id)
        if existing is not None and existing != value:
            raise FactError(
                f"fact {fact_id!r} already maps to {existing!r} in dimension "
                f"{self.dimension_name!r}; facts map to one value per dimension"
            )
        self._value_of[fact_id] = value

    def unlink(self, fact_id: str) -> None:
        self._value_of.pop(fact_id, None)

    def value_of(self, fact_id: str) -> str:
        try:
            return self._value_of[fact_id]
        except KeyError:
            raise FactError(
                f"fact {fact_id!r} has no value in dimension "
                f"{self.dimension_name!r}"
            ) from None

    def __contains__(self, fact_id: str) -> bool:
        return fact_id in self._value_of

    def __len__(self) -> int:
        return len(self._value_of)

    def items(self) -> Iterator[tuple[str, str]]:
        return iter(self._value_of.items())

    def copy(self) -> "FactDimensionRelation":
        clone = FactDimensionRelation(self.dimension_name)
        clone._value_of = dict(self._value_of)
        return clone


@dataclass(frozen=True)
class Provenance:
    """Which original facts an (aggregated) fact stands for.

    Definition 2 models a reduced fact as a *set* of original facts; we keep
    that set so users can ask why data is aggregated the way it is (the
    paper calls out exactly this requirement in Section 4).
    """

    members: frozenset[str] = field(default_factory=frozenset)

    @staticmethod
    def of(fact_id: str) -> "Provenance":
        return Provenance(frozenset({fact_id}))

    def merge(self, other: "Provenance") -> "Provenance":
        return Provenance(self.members | other.members)

    def __len__(self) -> int:
        return len(self.members)


def aggregate_fact_id(cell: Mapping[str, str] | tuple[str, ...]) -> str:
    """Deterministic id for the aggregated fact of a cell.

    Using a deterministic id means repeated reductions of the same cell at
    later times coalesce naturally onto one fact, which mirrors the paper's
    "one new fact per cell" semantics.
    """
    if isinstance(cell, Mapping):
        parts = [f"{k}={cell[k]}" for k in sorted(cell)]
    else:
        parts = list(cell)
    return "agg|" + "|".join(parts)
