"""Fact schemas, dimension types, and measure types (Section 3).

An *n*-dimensional fact schema is a triple ``S = (F, D, M)`` of a fact type
name, *n* dimension types, and *m* measure types.  A dimension type is a
poset of category types with top and bottom elements; measure types carry a
distributive default aggregate function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..errors import SchemaError
from .hierarchy import TOP, Hierarchy
from .measures import AggregateFunction, resolve_aggregate


@dataclass(frozen=True)
class DimensionType:
    """A named dimension type ``T = (C, <=_T, T_T, _|_T)``.

    The hierarchy owns the category-type poset; this class contributes the
    dimension-type name used to qualify categories in specifications (e.g.
    ``Time.month``).
    """

    name: str
    hierarchy: Hierarchy

    def __post_init__(self) -> None:
        if not self.name or "." in self.name:
            raise SchemaError(f"invalid dimension type name {self.name!r}")

    @property
    def bottom(self) -> str:
        return self.hierarchy.bottom

    @property
    def top(self) -> str:
        return self.hierarchy.top

    @property
    def categories(self) -> frozenset[str]:
        return self.hierarchy.categories

    def has_category(self, category: str) -> bool:
        return category in self.hierarchy

    def le(self, low: str, high: str) -> bool:
        """Category order ``low <=_T high`` within this dimension type."""
        return self.hierarchy.le(low, high)

    def is_linear(self) -> bool:
        return self.hierarchy.is_linear()

    def qualify(self, category: str) -> str:
        """Render ``Dim.category`` as used in the specification language."""
        if category == TOP:
            return f"{self.name}.T"
        return f"{self.name}.{category}"


@dataclass(frozen=True)
class MeasureType:
    """A named measure type with its distributive default aggregate."""

    name: str
    aggregate: AggregateFunction = field(default_factory=lambda: resolve_aggregate("sum"))

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("measure type must have a name")
        if not self.aggregate.distributive:
            raise SchemaError(
                f"default aggregate of measure {self.name!r} must be "
                f"distributive; {self.aggregate.name!r} is not"
            )


class FactSchema:
    """An *n*-dimensional fact schema ``S = (F, D, M)``."""

    def __init__(
        self,
        fact_type: str,
        dimension_types: Iterable[DimensionType],
        measure_types: Iterable[MeasureType],
    ) -> None:
        if not fact_type:
            raise SchemaError("fact schema must name its fact type")
        dims = tuple(dimension_types)
        if not dims:
            raise SchemaError("fact schema must have at least one dimension type")
        names = [d.name for d in dims]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate dimension type names: {names!r}")
        measures = tuple(measure_types)
        measure_names = [m.name for m in measures]
        if len(set(measure_names)) != len(measure_names):
            raise SchemaError(f"duplicate measure type names: {measure_names!r}")

        self.fact_type = fact_type
        self._dimension_types = dims
        self._by_name: dict[str, DimensionType] = {d.name: d for d in dims}
        self._measure_types = measures
        self._measures_by_name: dict[str, MeasureType] = {
            m.name: m for m in measures
        }

    # ------------------------------------------------------------------

    @property
    def dimension_types(self) -> tuple[DimensionType, ...]:
        return self._dimension_types

    @property
    def dimension_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self._dimension_types)

    @property
    def measure_types(self) -> tuple[MeasureType, ...]:
        return self._measure_types

    @property
    def measure_names(self) -> tuple[str, ...]:
        return tuple(m.name for m in self._measure_types)

    @property
    def n_dimensions(self) -> int:
        return len(self._dimension_types)

    def dimension_type(self, name: str) -> DimensionType:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown dimension type {name!r}") from None

    def measure_type(self, name: str) -> MeasureType:
        try:
            return self._measures_by_name[name]
        except KeyError:
            raise SchemaError(f"unknown measure type {name!r}") from None

    def dimension_index(self, name: str) -> int:
        for i, dim in enumerate(self._dimension_types):
            if dim.name == name:
                return i
        raise SchemaError(f"unknown dimension type {name!r}")

    def bottom_granularity(self) -> tuple[str, ...]:
        """The finest granularity: the bottom category of every dimension."""
        return tuple(d.bottom for d in self._dimension_types)

    def top_granularity(self) -> tuple[str, ...]:
        """The coarsest granularity: the top category of every dimension."""
        return tuple(d.top for d in self._dimension_types)

    def validate_granularity(self, granularity: Mapping[str, str]) -> tuple[str, ...]:
        """Check a dim-name -> category mapping names every dimension once.

        Returns the granularity as a tuple ordered like the schema's
        dimensions (the paper's ``Clist`` convention).
        """
        missing = set(self.dimension_names) - set(granularity)
        extra = set(granularity) - set(self.dimension_names)
        if missing or extra:
            raise SchemaError(
                f"granularity must name every dimension exactly once; "
                f"missing={sorted(missing)!r} extra={sorted(extra)!r}"
            )
        out: list[str] = []
        for dim in self._dimension_types:
            category = granularity[dim.name]
            if not dim.has_category(category):
                raise SchemaError(
                    f"dimension {dim.name!r} has no category {category!r}"
                )
            out.append(category)
        return tuple(out)

    def le_granularity(self, low: tuple[str, ...], high: tuple[str, ...]) -> bool:
        """Granularity order ``<=_P`` (Equation 6): componentwise ``<=_Ti``."""
        if len(low) != self.n_dimensions or len(high) != self.n_dimensions:
            raise SchemaError("granularity arity does not match the schema")
        return all(
            dim.le(lo, hi)
            for dim, lo, hi in zip(self._dimension_types, low, high)
        )

    def max_granularity(
        self, granularities: Iterable[tuple[str, ...]]
    ) -> tuple[str, ...]:
        """The paper's ``max_<=P`` over a totally ordered input set."""
        grans = list(granularities)
        if not grans:
            raise SchemaError("max_granularity of an empty set")
        best = grans[0]
        for g in grans[1:]:
            if self.le_granularity(best, g):
                best = g
            elif not self.le_granularity(g, best):
                raise SchemaError(
                    f"granularities {best!r} and {g!r} are incomparable; "
                    "max_<=P requires a totally ordered input set"
                )
        return best

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dims = ", ".join(self.dimension_names)
        return f"FactSchema({self.fact_type}; dims=[{dims}]; measures={list(self.measure_names)!r})"
