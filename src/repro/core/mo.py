"""The multidimensional object (MO) — the paper's central data structure.

``O = (S, F, D, R, M)``: a fact schema, a set of facts, one dimension per
dimension type, one fact-dimension relation per dimension, and a set of
measures (Section 3).  The MO supports both user-level insertion (facts at
bottom granularity) and the internal any-granularity insertion exploited by
the reduction engine.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from ..errors import FactError, QueryError, SchemaError
from .dimension import ALL_VALUE, Dimension
from .facts import FactDimensionRelation, Provenance
from .measures import Measure
from .rowcheck import RowValidator
from .schema import FactSchema


class MultidimensionalObject:
    """An instance ``O = (S, F, D, R, M)`` of a fact schema."""

    #: Set (per instance) by the mutation sanitizer when this MO belongs
    #: to a published snapshot; mutators then raise instead of writing.
    _sealed = False

    #: Lazily attached per instance on first insert: the shared
    #: memoizing row validator (one code path with bulk ingest).
    _validator: RowValidator | None = None

    def __init__(
        self,
        schema: FactSchema,
        dimensions: Mapping[str, Dimension],
    ) -> None:
        missing = set(schema.dimension_names) - set(dimensions)
        if missing:
            raise SchemaError(f"MO is missing dimensions {sorted(missing)!r}")
        for name in schema.dimension_names:
            if dimensions[name].dimension_type.name != name:
                raise SchemaError(
                    f"dimension instance {dimensions[name].name!r} bound to "
                    f"schema dimension {name!r}"
                )
        self.schema = schema
        self.dimensions: dict[str, Dimension] = {
            name: dimensions[name] for name in schema.dimension_names
        }
        self.relations: dict[str, FactDimensionRelation] = {
            name: FactDimensionRelation(name) for name in schema.dimension_names
        }
        self.measures: dict[str, Measure] = {
            mt.name: Measure(mt.name, mt.aggregate)
            for mt in schema.measure_types
        }
        self._facts: dict[str, Provenance] = {}

    # ------------------------------------------------------------------
    # Facts
    # ------------------------------------------------------------------

    @property
    def fact_ids(self) -> frozenset[str]:
        return frozenset(self._facts)

    def facts(self) -> Iterator[str]:
        return iter(self._facts)

    @property
    def n_facts(self) -> int:
        return len(self._facts)

    def __contains__(self, fact_id: str) -> bool:
        return fact_id in self._facts

    def provenance(self, fact_id: str) -> Provenance:
        try:
            return self._facts[fact_id]
        except KeyError:
            raise FactError(f"unknown fact {fact_id!r}") from None

    def insert_fact(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measure_values: Mapping[str, object],
    ) -> str:
        """Insert a user fact: coordinates must be bottom-category values.

        Unknown coordinates are not defaulted — the model disallows missing
        values; callers wanting "unknown" must pass :data:`ALL_VALUE`
        explicitly, which the paper sanctions via the pair ``(f, T)``.
        """
        return self._insert(fact_id, coordinates, measure_values, bottom_only=True)

    def insert_aggregate_fact(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measure_values: Mapping[str, object],
        provenance: Provenance | None = None,
    ) -> str:
        """Insert a fact at any granularity (reduction-engine internal)."""
        return self._insert(
            fact_id, coordinates, measure_values, bottom_only=False,
            provenance=provenance,
        )

    def _insert(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measure_values: Mapping[str, object],
        bottom_only: bool,
        provenance: Provenance | None = None,
    ) -> str:
        if self._sealed:
            from ..sanitize import check_unsealed

            check_unsealed(self, f"insert of fact {fact_id!r}")
        if fact_id in self._facts:
            raise FactError(f"fact {fact_id!r} already exists")
        validator = self._validator
        if validator is None:
            validator = self._validator = RowValidator(
                self.schema, self.dimensions
            )
        canonical = validator.validate_row(
            fact_id, coordinates, measure_values, bottom_only=bottom_only
        )
        for name in self.schema.dimension_names:
            self.relations[name].link(fact_id, canonical[name])
        for name in self.schema.measure_names:
            self.measures[name].set(fact_id, measure_values[name])
        self._facts[fact_id] = provenance or Provenance.of(fact_id)
        return fact_id

    def delete_fact(self, fact_id: str) -> None:
        if self._sealed:
            from ..sanitize import check_unsealed

            check_unsealed(self, f"delete of fact {fact_id!r}")
        if fact_id not in self._facts:
            raise FactError(f"unknown fact {fact_id!r}")
        for relation in self.relations.values():
            relation.unlink(fact_id)
        for measure in self.measures.values():
            measure.discard(fact_id)
        del self._facts[fact_id]

    # ------------------------------------------------------------------
    # Characterization and granularity
    # ------------------------------------------------------------------

    def direct_value(self, fact_id: str, dimension_name: str) -> str:
        """The value *fact_id* maps to directly in *dimension_name*."""
        return self.relations[dimension_name].value_of(fact_id)

    def direct_cell(self, fact_id: str) -> tuple[str, ...]:
        """The fact's direct values, ordered like the schema's dimensions."""
        return tuple(
            self.relations[name].value_of(fact_id)
            for name in self.schema.dimension_names
        )

    def characterized_by(self, fact_id: str, dimension_name: str, value: str) -> bool:
        """The paper's ``f ~> v``: direct or ancestor characterization."""
        direct = self.direct_value(fact_id, dimension_name)
        return self.dimensions[dimension_name].le_value(direct, value)

    def characterizing_value(
        self, fact_id: str, dimension_name: str, category: str
    ) -> str | None:
        """The value of *category* characterizing the fact, or ``None``.

        ``None`` signals that the fact's data is too coarse (or on a
        parallel branch) to characterize it at *category* — the situation
        the query algebra's varying-granularity semantics must handle.
        """
        direct = self.direct_value(fact_id, dimension_name)
        return self.dimensions[dimension_name].try_ancestor_at(direct, category)

    def gran(self, fact_id: str) -> tuple[str, ...]:
        """The fact's current granularity (the paper's ``Gran``, Eq. 10)."""
        return tuple(
            self.dimensions[name].category_of(self.relations[name].value_of(fact_id))
            for name in self.schema.dimension_names
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------

    def measure(self, name: str) -> Measure:
        try:
            return self.measures[name]
        except KeyError:
            raise QueryError(f"unknown measure {name!r}") from None

    def measure_value(self, fact_id: str, measure_name: str) -> object:
        return self.measure(measure_name)[fact_id]

    def total(self, measure_name: str) -> object | None:
        """Default-aggregate of a measure over all facts (None when empty)."""
        measure = self.measure(measure_name)
        if not self._facts:
            return None
        return measure.aggregate_over(self._facts)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def empty_like(self) -> "MultidimensionalObject":
        """A fresh MO with the same schema and dimensions, no facts."""
        return MultidimensionalObject(self.schema, self.dimensions)

    def to_columnar(self):
        """Export the fact set as a :class:`~repro.core.columnar.ColumnarFactTable`.

        The export is zero-copy for the payload: measure values and
        provenance objects are shared, only coordinate codes are built.
        Row order is this MO's fact-iteration order.
        """
        from .columnar import ColumnarFactTable

        return ColumnarFactTable.from_mo(self)

    @classmethod
    def from_columnar(cls, table) -> "MultidimensionalObject":
        """Import a columnar table back into a row-wise MO."""
        return table.to_mo()

    def copy(self) -> "MultidimensionalObject":
        clone = self.empty_like()
        for fact_id, provenance in self._facts.items():
            clone._facts[fact_id] = provenance
        for name, relation in self.relations.items():
            clone.relations[name] = relation.copy()
        for name, measure in self.measures.items():
            clone.measures[name] = measure.copy()
        return clone

    def restrict_to_facts(self, fact_ids: Iterable[str]) -> "MultidimensionalObject":
        """The MO restricted to *fact_ids* (selection's F', R', M', Eq. 36).

        Fact-iteration order of the result follows *fact_ids* (first
        occurrence wins, duplicates ignored): a restriction of a serial
        fact stream preserves that stream's order, which the shard-parallel
        reducer's bit-for-bit merge relies on.  Values are copied verbatim
        from this MO — they are already canonical, so the per-fact
        normalization of :meth:`insert_aggregate_fact` is skipped.
        """
        out = self.empty_like()
        facts = self._facts
        out_facts = out._facts
        relation_pairs = [
            (out.relations[name]._value_of, self.relations[name]._value_of)
            for name in self.schema.dimension_names
        ]
        measure_pairs = [
            (out.measures[name]._values, self.measures[name]._values)
            for name in self.schema.measure_names
        ]
        unknown: set[str] = set()
        for fact_id in fact_ids:
            if fact_id in out_facts:
                continue
            provenance = facts.get(fact_id)
            if provenance is None:
                unknown.add(fact_id)
                continue
            out_facts[fact_id] = provenance
            for dst, src in relation_pairs:
                dst[fact_id] = src[fact_id]
            for dst, src in measure_pairs:
                dst[fact_id] = src[fact_id]
        if unknown:
            raise FactError(f"unknown facts {sorted(unknown)!r}")
        return out

    def granularity_histogram(self) -> dict[tuple[str, ...], int]:
        """Fact count per current granularity — handy for storage reports."""
        histogram: dict[tuple[str, ...], int] = {}
        for fact_id in self._facts:
            g = self.gran(fact_id)
            histogram[g] = histogram.get(g, 0) + 1
        return histogram

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MO({self.schema.fact_type}, facts={self.n_facts}, "
            f"dims={list(self.schema.dimension_names)!r})"
        )


def unknown_coordinates(schema: FactSchema) -> dict[str, str]:
    """Coordinates mapping every dimension to ``T`` (all-unknown fact)."""
    return {name: ALL_VALUE for name in schema.dimension_names}
