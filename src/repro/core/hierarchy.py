"""Partial-order machinery for category-type hierarchies.

The paper (Section 3) models each dimension type as a set of category types
equipped with a partial order ``<=_T`` whose top element ``T_T`` contains a
single value and whose bottom element ``_|_T`` is the finest granularity.
This module implements that poset as an explicit DAG of *immediate
containment* edges (a Hasse diagram) and derives everything else from it:

* reflexive-transitive order ``le``,
* immediate ancestors ``anc`` (the paper's ``Anc`` function),
* linearity test (Section 3: "the hierarchy ... is linear if <=_T is total"),
* greatest lower bounds ``glb`` (the paper's ``GLB_i``, Equation 33) and
  least upper bounds ``lub`` (used by the LUB aggregation approach),
* a lattice check (Definition 5 assumes a lattice; when the poset is not a
  lattice we fall back to *any* lower bound, exactly as the paper allows).
"""

from __future__ import annotations

import weakref
from typing import Iterable, Iterator, Mapping

from .._forkreg import register_cache
from ..errors import HierarchyError

#: Name of the distinguished top category type, written ``T_T`` in the paper.
TOP = "__top__"

#: Live hierarchy instances, tracked so forked worker processes can drop
#: every per-instance memo in one sweep (:func:`clear_hierarchy_caches`).
_INSTANCES: "weakref.WeakSet[Hierarchy]" = weakref.WeakSet()


def clear_hierarchy_caches() -> None:
    """Reset the memoized bound/shape queries of every live hierarchy.

    The memos are pure functions of the immutable edge set, so this is
    never needed for correctness in-process; it exists for fork hygiene
    (:mod:`repro.parallel.forksafe`) so workers start with empty memos
    instead of copies of the parent's.
    """
    for hierarchy in list(_INSTANCES):
        hierarchy._glb_cache.clear()
        hierarchy._lub_cache.clear()
        hierarchy._linear = None
        hierarchy._lattice = None


def _hierarchy_memo_entries() -> int:
    return sum(
        len(hierarchy._glb_cache)
        + len(hierarchy._lub_cache)
        + (hierarchy._linear is not None)
        + (hierarchy._lattice is not None)
        for hierarchy in list(_INSTANCES)
    )


register_cache(
    "repro.core.hierarchy:memos",
    clear_hierarchy_caches,
    _hierarchy_memo_entries,
)


def is_top(category: str) -> bool:
    """Return ``True`` when *category* is the distinguished top category."""
    return category == TOP


class Hierarchy:
    """A poset of category-type names with unique top and bottom elements.

    Parameters
    ----------
    edges:
        Mapping from a category name to the set of its *immediate* ancestor
        category names.  The top category :data:`TOP` is added automatically
        as an ancestor of every maximal user category, so callers never name
        it explicitly in *edges*.
    bottom:
        Name of the bottom category type (the finest granularity).

    The paper requires every dimension type to have both a top and a bottom
    element; this class enforces that and rejects cycles.
    """

    def __init__(self, edges: Mapping[str, Iterable[str]], bottom: str) -> None:
        parents: dict[str, frozenset[str]] = {}
        names: set[str] = {bottom}
        for child, ancestors in edges.items():
            ancestor_set = frozenset(ancestors)
            if child == TOP:
                raise HierarchyError("the top category cannot have ancestors")
            if child in ancestor_set:
                raise HierarchyError(f"category {child!r} cannot contain itself")
            parents[child] = ancestor_set
            names.add(child)
            names.update(ancestor_set)
        if TOP in names:
            raise HierarchyError(
                f"{TOP!r} is reserved; the top category is added automatically"
            )
        # Every category without an explicit ancestor is immediately below TOP.
        for name in names:
            if not parents.get(name):
                parents[name] = frozenset({TOP})
        parents[TOP] = frozenset()
        names.add(TOP)

        self._bottom = bottom
        self._parents = parents
        self._order = _topological_order(parents)
        self._reach = _reachability(parents, self._order)
        self._children: dict[str, frozenset[str]] = _invert(parents)
        # Bound queries are pure functions of the (immutable) edge set and
        # sit on hot paths (granularity comparisons, LUB aggregation), so
        # they are memoized per instance.
        self._glb_cache: dict[frozenset[str], str] = {}
        self._lub_cache: dict[frozenset[str], str] = {}
        self._linear: bool | None = None
        self._lattice: bool | None = None
        _INSTANCES.add(self)

        if bottom not in parents:
            raise HierarchyError(f"bottom category {bottom!r} is not in the hierarchy")
        not_above_bottom = [
            name for name in names if name != bottom and not self.le(bottom, name)
        ]
        if not_above_bottom:
            raise HierarchyError(
                "every category must contain the bottom category; "
                f"violated by {sorted(not_above_bottom)!r}"
            )

    # ------------------------------------------------------------------
    # Basic structure
    # ------------------------------------------------------------------

    @property
    def bottom(self) -> str:
        """The bottom (finest) category type, ``_|_T`` in the paper."""
        return self._bottom

    @property
    def top(self) -> str:
        """The top category type, ``T_T`` in the paper."""
        return TOP

    @property
    def categories(self) -> frozenset[str]:
        """All category-type names, including :data:`TOP`."""
        return frozenset(self._parents)

    @property
    def user_categories(self) -> tuple[str, ...]:
        """Categories except :data:`TOP`, ordered bottom-up."""
        return tuple(c for c in self._order if c != TOP)

    def __contains__(self, category: str) -> bool:
        return category in self._parents

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def anc(self, category: str) -> frozenset[str]:
        """Immediate ancestors of *category* (the paper's ``Anc``)."""
        self._require(category)
        return self._parents[category]

    def children(self, category: str) -> frozenset[str]:
        """Immediate descendants of *category*."""
        self._require(category)
        return self._children.get(category, frozenset())

    # ------------------------------------------------------------------
    # Order queries
    # ------------------------------------------------------------------

    def le(self, low: str, high: str) -> bool:
        """Return ``True`` when ``low <=_T high`` (reflexive)."""
        self._require(low)
        self._require(high)
        return low == high or high in self._reach[low]

    def lt(self, low: str, high: str) -> bool:
        """Strict version of :meth:`le`."""
        return low != high and self.le(low, high)

    def comparable(self, a: str, b: str) -> bool:
        """Return ``True`` when *a* and *b* are ordered either way."""
        return self.le(a, b) or self.le(b, a)

    def ancestors(self, category: str) -> frozenset[str]:
        """All categories strictly above *category*."""
        self._require(category)
        return self._reach[category]

    def descendants(self, category: str) -> frozenset[str]:
        """All categories strictly below *category*."""
        self._require(category)
        return frozenset(c for c in self._parents if c != category and self.le(c, category))

    def is_linear(self) -> bool:
        """Return ``True`` when the order is total (Section 3's *linear*)."""
        if self._linear is None:
            self._linear = self._compute_is_linear()
        return self._linear

    def _compute_is_linear(self) -> bool:
        cats = list(self._parents)
        return all(
            self.comparable(a, b) for i, a in enumerate(cats) for b in cats[i + 1 :]
        )

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------

    def lower_bounds(self, categories: Iterable[str]) -> frozenset[str]:
        """All categories that are ``<=`` every category in *categories*."""
        cats = list(categories)
        if not cats:
            return frozenset(self._parents)
        return frozenset(
            c for c in self._parents if all(self.le(c, other) for other in cats)
        )

    def upper_bounds(self, categories: Iterable[str]) -> frozenset[str]:
        """All categories that are ``>=`` every category in *categories*."""
        cats = list(categories)
        if not cats:
            return frozenset(self._parents)
        return frozenset(
            c for c in self._parents if all(self.le(other, c) for other in cats)
        )

    def glb(self, categories: Iterable[str]) -> str:
        """Greatest lower bound of *categories* (the paper's ``GLB_i``).

        When the poset is a lattice this is the unique maximal lower bound
        (Equation 33).  When it is not, the paper notes that "any lower bound
        will do" because the bottom category always exists; in that case we
        return a deterministic maximal lower bound (ties broken by the
        topological order, bottom-most last, so the coarsest candidate wins).
        """
        key = frozenset(categories)
        cached = self._glb_cache.get(key)
        if cached is None:
            cached = self._glb_cache[key] = self._compute_glb(key)
        return cached

    def _compute_glb(self, categories: frozenset[str]) -> str:
        bounds = self.lower_bounds(categories)
        maximal = [
            c for c in bounds if not any(self.lt(c, other) for other in bounds)
        ]
        if not maximal:  # pragma: no cover - bottom is always a lower bound
            raise HierarchyError("no lower bound found; hierarchy has no bottom?")
        maximal.sort(key=self._order.index)
        return maximal[-1]

    def lub(self, categories: Iterable[str]) -> str:
        """Least upper bound of *categories* (dual of :meth:`glb`)."""
        key = frozenset(categories)
        cached = self._lub_cache.get(key)
        if cached is None:
            cached = self._lub_cache[key] = self._compute_lub(key)
        return cached

    def _compute_lub(self, categories: frozenset[str]) -> str:
        bounds = self.upper_bounds(categories)
        minimal = [
            c for c in bounds if not any(self.lt(other, c) for other in bounds)
        ]
        if not minimal:  # pragma: no cover - TOP is always an upper bound
            raise HierarchyError("no upper bound found; hierarchy has no top?")
        minimal.sort(key=self._order.index)
        return minimal[0]

    def is_lattice(self) -> bool:
        """Return ``True`` when every pair has a unique GLB and LUB."""
        if self._lattice is None:
            self._lattice = self._compute_is_lattice()
        return self._lattice

    def _compute_is_lattice(self) -> bool:
        cats = list(self._parents)
        for i, a in enumerate(cats):
            for b in cats[i + 1 :]:
                lower = self.lower_bounds((a, b))
                if len([c for c in lower if not any(self.lt(c, o) for o in lower)]) != 1:
                    return False
                upper = self.upper_bounds((a, b))
                if len([c for c in upper if not any(self.lt(o, c) for o in upper)]) != 1:
                    return False
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def paths_to_top(self, category: str) -> list[tuple[str, ...]]:
        """All maximal upward chains from *category* to :data:`TOP`.

        Used for display and for enumerating the parallel branches of
        non-linear hierarchies (e.g. day->week->TOP and
        day->month->quarter->year->TOP in the paper's Time dimension).
        """
        self._require(category)
        if category == TOP:
            return [(TOP,)]
        paths: list[tuple[str, ...]] = []
        for parent in sorted(self._parents[category]):
            for tail in self.paths_to_top(parent):
                paths.append((category, *tail))
        return paths

    def _require(self, category: str) -> None:
        if category not in self._parents:
            raise HierarchyError(f"unknown category type {category!r}")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        chains = " | ".join("<".join(p) for p in self.paths_to_top(self._bottom))
        return f"Hierarchy({chains})"


def _topological_order(parents: Mapping[str, frozenset[str]]) -> list[str]:
    """Order categories bottom-up (finest first); raise on cycles."""
    state: dict[str, int] = {}  # 0 = visiting, 1 = done

    def visit(node: str, stack: tuple[str, ...]) -> None:
        mark = state.get(node)
        if mark == 1:
            return
        if mark == 0:
            cycle = " -> ".join((*stack, node))
            raise HierarchyError(f"cycle in category hierarchy: {cycle}")
        state[node] = 0
        for parent in sorted(parents[node]):
            visit(parent, (*stack, node))
        state[node] = 1

    for name in sorted(parents):
        visit(name, ())

    # Distance to TOP orders the poset bottom-up deterministically.
    height: dict[str, int] = {}

    def compute_height(node: str) -> int:
        if node not in height:
            ancestors = parents[node]
            height[node] = (
                0 if not ancestors else 1 + max(compute_height(p) for p in ancestors)
            )
        return height[node]

    return sorted(parents, key=lambda n: (-compute_height(n), n))


def _reachability(
    parents: Mapping[str, frozenset[str]], order: list[str]
) -> dict[str, frozenset[str]]:
    """For each category, the set of all strict ancestors."""
    reach: dict[str, frozenset[str]] = {}

    def compute(node: str) -> frozenset[str]:
        if node not in reach:
            acc: set[str] = set()
            for parent in parents[node]:
                acc.add(parent)
                acc.update(compute(parent))
            reach[node] = frozenset(acc)
        return reach[node]

    for name in parents:
        compute(name)
    return reach


def _invert(parents: Mapping[str, frozenset[str]]) -> dict[str, frozenset[str]]:
    children: dict[str, set[str]] = {name: set() for name in parents}
    for child, ancestors in parents.items():
        for parent in ancestors:
            children[parent].add(child)
    return {name: frozenset(kids) for name, kids in children.items()}
