"""The multidimensional data model of Section 3.

Public surface: hierarchies, dimension types and instances, fact schemas,
measures, multidimensional objects, and fluent builders.
"""

from .builder import (
    MOBuilder,
    dimension_from_rows,
    dimension_type_from_chains,
)
from .dimension import ALL_VALUE, Dimension
from .facts import FactDimensionRelation, Provenance, aggregate_fact_id
from .hierarchy import TOP, Hierarchy, is_top
from .measures import (
    AggregateFunction,
    COUNT,
    MAX,
    MIN,
    Measure,
    SUM,
    register_aggregate,
    resolve_aggregate,
)
from .mo import MultidimensionalObject, unknown_coordinates
from .schema import DimensionType, FactSchema, MeasureType
from .validate import ValidationIssue, is_valid_mo, validate_mo

__all__ = [
    "ALL_VALUE",
    "AggregateFunction",
    "COUNT",
    "Dimension",
    "DimensionType",
    "FactDimensionRelation",
    "FactSchema",
    "Hierarchy",
    "MAX",
    "MIN",
    "MOBuilder",
    "Measure",
    "MeasureType",
    "MultidimensionalObject",
    "Provenance",
    "SUM",
    "TOP",
    "ValidationIssue",
    "aggregate_fact_id",
    "dimension_from_rows",
    "dimension_type_from_chains",
    "is_top",
    "is_valid_mo",
    "register_aggregate",
    "resolve_aggregate",
    "unknown_coordinates",
    "validate_mo",
]
