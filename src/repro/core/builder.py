"""Fluent builders for dimensions and multidimensional objects.

The formal model is verbose to instantiate by hand; these builders let
examples, tests, and workload generators construct MOs from the same kind
of flat rows the paper's Table 2 uses (one row per bottom value with one
column per category).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..errors import DimensionError, SchemaError
from .dimension import Dimension, Normalizer, SortKey
from .hierarchy import TOP, Hierarchy
from .measures import resolve_aggregate
from .mo import MultidimensionalObject
from .schema import DimensionType, FactSchema, MeasureType


def dimension_type_from_chains(
    name: str, chains: Sequence[Sequence[str]]
) -> DimensionType:
    """Build a dimension type from bottom-up category chains.

    Each chain lists categories from finest to coarsest; all chains must
    share the same bottom category.  The paper's Time type is two chains::

        dimension_type_from_chains("Time", [
            ["day", "month", "quarter", "year"],
            ["day", "week"],
        ])
    """
    if not chains:
        raise SchemaError(f"dimension type {name!r} needs at least one chain")
    bottoms = {chain[0] for chain in chains if chain}
    if len(bottoms) != 1:
        raise SchemaError(
            f"dimension type {name!r}: all chains must start at the same "
            f"bottom category; got {sorted(bottoms)!r}"
        )
    edges: dict[str, set[str]] = {}
    for chain in chains:
        for child, parent in zip(chain, chain[1:]):
            edges.setdefault(child, set()).add(parent)
        if chain:
            edges.setdefault(chain[-1], set())
    return DimensionType(name, Hierarchy(edges, next(iter(bottoms))))


def dimension_from_rows(
    dimension_type: DimensionType,
    rows: Iterable[Mapping[str, str]],
    sort_key: SortKey | None = None,
    normalizer: Normalizer | None = None,
) -> Dimension:
    """Materialize a dimension from flat rows, one per bottom value.

    Each row maps category names to the value at that category (like a row
    of the paper's Time or URL dimension tables).  Rows may omit categories
    on branches that do not apply; every mentioned category must exist.
    Containment links are derived from co-occurrence within a row, using the
    hierarchy's immediate-ancestor structure.
    """
    hierarchy = dimension_type.hierarchy
    dimension = Dimension(dimension_type, sort_key, normalizer)
    # Insert top-down so parents exist before children reference them.
    order = [c for c in hierarchy if c != TOP]
    ordered_categories = list(reversed(order))
    materialized: set[tuple[str, str]] = set()
    row_list = list(rows)
    for row in row_list:
        unknown = set(row) - set(hierarchy.categories)
        if unknown:
            raise DimensionError(
                f"{dimension_type.name}: rows mention unknown categories "
                f"{sorted(unknown)!r}"
            )
    for category in ordered_categories:
        immediate = hierarchy.anc(category)
        for row in row_list:
            value = row.get(category)
            if value is None:
                continue
            parents = [
                row[parent_category]
                for parent_category in immediate
                if parent_category != TOP and parent_category in row
            ]
            key = (category, value)
            if key in materialized:
                # Merge any new parent links discovered in this row.
                dimension.add_value(category, value, parents)
                continue
            dimension.add_value(category, value, parents)
            materialized.add(key)
    return dimension


class MOBuilder:
    """Assemble a :class:`MultidimensionalObject` step by step."""

    def __init__(self, fact_type: str) -> None:
        self._fact_type = fact_type
        self._dimension_types: list[DimensionType] = []
        self._dimensions: dict[str, Dimension] = {}
        self._measure_types: list[MeasureType] = []
        self._pending_facts: list[tuple[str, dict[str, str], dict[str, object]]] = []

    def with_dimension(
        self,
        name: str,
        chains: Sequence[Sequence[str]],
        rows: Iterable[Mapping[str, str]],
        sort_key: SortKey | None = None,
    ) -> "MOBuilder":
        dimension_type = dimension_type_from_chains(name, chains)
        self._dimension_types.append(dimension_type)
        self._dimensions[name] = dimension_from_rows(dimension_type, rows, sort_key)
        return self

    def with_prebuilt_dimension(self, dimension: Dimension) -> "MOBuilder":
        self._dimension_types.append(dimension.dimension_type)
        self._dimensions[dimension.name] = dimension
        return self

    def with_measure(self, name: str, aggregate: str = "sum") -> "MOBuilder":
        self._measure_types.append(
            MeasureType(name, resolve_aggregate(aggregate))
        )
        return self

    def with_fact(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measures: Mapping[str, object],
    ) -> "MOBuilder":
        self._pending_facts.append((fact_id, dict(coordinates), dict(measures)))
        return self

    def build(self) -> MultidimensionalObject:
        schema = FactSchema(
            self._fact_type, self._dimension_types, self._measure_types
        )
        mo = MultidimensionalObject(schema, self._dimensions)
        for fact_id, coordinates, measures in self._pending_facts:
            mo.insert_fact(fact_id, coordinates, measures)
        return mo
