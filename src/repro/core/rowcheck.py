"""Shared, memoizing fact-row validation.

Single-fact insertion (:meth:`MultidimensionalObject.insert_fact`) and
the streaming ingest buffer (:class:`repro.ingest.batch.FactBatchBuffer`)
run the same checks in the same order — missing coordinates, missing
measures, value normalization, bottom-granularity enforcement — through
one :class:`RowValidator`, so a fact rejected on one path is rejected
with the identical error on the other.

The validator memoizes ``normalize_value``/``category_of`` per distinct
raw value: dimension hierarchies are immutable after construction, so
the hierarchy walk is paid once per value, not once per fact.  That is
the fix for the historical per-call rescan in ``MO._insert`` and the
reason bulk ingest over low-cardinality dimensions stays cheap.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import FactError, MeasureError
from .dimension import Dimension
from .hierarchy import TOP
from .schema import FactSchema


class RowValidator:
    """Validates ``(fact_id, coordinates, measures)`` rows for a schema.

    One instance per MO or ingest stream; the per-dimension memo maps a
    raw coordinate value to its ``(canonical, category)`` pair.  Safe to
    keep only while the bound dimensions stay unmutated (they are, by
    construction, after build).
    """

    def __init__(
        self,
        schema: FactSchema,
        dimensions: Mapping[str, Dimension],
    ) -> None:
        self.schema = schema
        self.dimensions = dict(dimensions)
        self._canonical: dict[str, dict[str, tuple[str, str]]] = {
            name: {} for name in schema.dimension_names
        }

    def canonical_value(
        self, dimension_name: str, value: str
    ) -> tuple[str, str]:
        """``(canonical value, category)`` of a raw coordinate, memoized."""
        memo = self._canonical[dimension_name]
        hit = memo.get(value)
        if hit is None:
            dimension = self.dimensions[dimension_name]
            canonical = dimension.normalize_value(value)
            hit = (canonical, dimension.category_of(canonical))
            memo[value] = hit
        return hit

    def validate_row(
        self,
        fact_id: str,
        coordinates: Mapping[str, str],
        measure_values: Mapping[str, object],
        *,
        bottom_only: bool = True,
    ) -> dict[str, str]:
        """Check one row; return its canonical coordinates.

        Raises :class:`FactError`/:class:`MeasureError` with the exact
        messages ``MO._insert`` historically raised, so every caller of
        the single-fact API sees unchanged behavior.
        """
        missing_dims = set(self.schema.dimension_names) - set(coordinates)
        if missing_dims:
            raise FactError(
                f"fact {fact_id!r} lacks coordinates for {sorted(missing_dims)!r}; "
                "the model disallows missing values"
            )
        missing_measures = set(self.schema.measure_names) - set(measure_values)
        if missing_measures:
            raise MeasureError(
                f"fact {fact_id!r} lacks measures {sorted(missing_measures)!r}"
            )
        canonical: dict[str, str] = {}
        for name in self.schema.dimension_names:
            value, category = self.canonical_value(name, coordinates[name])
            if bottom_only and category not in (
                self.dimensions[name].bottom_category,
                TOP,
            ):
                raise FactError(
                    f"fact {fact_id!r}: user facts map to bottom-category "
                    f"values; {value!r} is in {category!r} of {name!r}"
                )
            canonical[name] = value
        return canonical
