"""Integrity validation for multidimensional objects.

The model of Section 3 carries several invariants that builders and the
reduction engine maintain by construction; this module re-checks them on
any MO — the tool you run after deserializing a document from an
untrusted source, or in CI after a custom loader:

* every fact maps to exactly one existing value per dimension and has a
  value for every measure;
* every dimension value rolls up to exactly one ancestor in every
  category above it (no ragged or ambiguous hierarchies);
* provenance member sets of distinct facts do not overlap (each source
  fact is accounted for exactly once);
* measure values of SUM/COUNT measures are numeric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import DimensionError
from .dimension import ALL_VALUE, Dimension
from .hierarchy import TOP
from .mo import MultidimensionalObject


@dataclass(frozen=True)
class ValidationIssue:
    """One detected integrity violation."""

    kind: str
    subject: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.subject}: {self.detail}"


def validate_mo(mo: MultidimensionalObject) -> list[ValidationIssue]:
    """All integrity issues of *mo* (empty list == valid)."""
    return list(iter_issues(mo))


def is_valid_mo(mo: MultidimensionalObject) -> bool:
    """Whether *mo* has no integrity issues (short-circuits on the first)."""
    return next(iter_issues(mo), None) is None


def iter_issues(mo: MultidimensionalObject) -> Iterator[ValidationIssue]:
    """Lazily yield every integrity issue of *mo*."""
    yield from _dimension_issues(mo)
    yield from _fact_issues(mo)
    yield from _provenance_issues(mo)


def _dimension_issues(mo: MultidimensionalObject) -> Iterator[ValidationIssue]:
    for name, dimension in mo.dimensions.items():
        hierarchy = dimension.dimension_type.hierarchy
        for category in hierarchy.user_categories:
            for value in dimension.values(category):
                for ancestor_category in hierarchy.ancestors(category):
                    if ancestor_category == TOP:
                        continue
                    try:
                        ancestor = dimension.try_ancestor_at(
                            value, ancestor_category
                        )
                    except DimensionError as exc:
                        yield ValidationIssue(
                            "ambiguous-rollup", f"{name}.{value}", str(exc)
                        )
                        continue
                    if ancestor is None:
                        yield ValidationIssue(
                            "ragged-hierarchy",
                            f"{name}.{value}",
                            f"no ancestor at {ancestor_category!r}",
                        )


def _fact_issues(mo: MultidimensionalObject) -> Iterator[ValidationIssue]:
    numeric_measures = [
        mt.name
        for mt in mo.schema.measure_types
        if mt.aggregate.name in ("sum", "count")
    ]
    for fact_id in mo.facts():
        for name in mo.schema.dimension_names:
            dimension: Dimension = mo.dimensions[name]
            try:
                value = mo.direct_value(fact_id, name)
            except Exception as exc:
                yield ValidationIssue("missing-value", fact_id, str(exc))
                continue
            if value != ALL_VALUE and value not in dimension:
                yield ValidationIssue(
                    "unknown-value",
                    fact_id,
                    f"{name}={value!r} is not in the dimension",
                )
        for measure_name in mo.schema.measure_names:
            try:
                value = mo.measure_value(fact_id, measure_name)
            except Exception as exc:
                yield ValidationIssue("missing-measure", fact_id, str(exc))
                continue
            if measure_name in numeric_measures and not isinstance(
                value, (int, float)
            ):
                yield ValidationIssue(
                    "non-numeric-measure",
                    fact_id,
                    f"{measure_name}={value!r} under a SUM/COUNT aggregate",
                )


def _provenance_issues(mo: MultidimensionalObject) -> Iterator[ValidationIssue]:
    owner: dict[str, str] = {}
    for fact_id in mo.facts():
        for member in mo.provenance(fact_id).members:
            previous = owner.get(member)
            if previous is not None and previous != fact_id:
                yield ValidationIssue(
                    "overlapping-provenance",
                    member,
                    f"claimed by both {previous!r} and {fact_id!r}",
                )
            owner[member] = fact_id
