"""Columnar, interned fact storage with batch kernels.

The dict-of-dicts :class:`~repro.core.mo.MultidimensionalObject` is the
faithful model structure; this module is its performance twin: facts as
parallel columns, one integer-coded coordinate column per dimension (the
codes index a per-dimension value interner) plus one value list per
measure.  The layout enables the batch kernels the reduction and subcube
engines need:

* :meth:`ColumnarFactTable.distinct_cells` — deduplicate coordinate rows
  into distinct direct cells (``numpy`` when available, pure-``dict``
  interning otherwise);
* :meth:`ColumnarFactTable.conjunct_mask` — batch predicate admission:
  evaluate a per-dimension value predicate once per *distinct value* and
  broadcast the verdicts over all distinct cells (the vectorized form of
  the per-value verdict caches in :mod:`repro.reduction.compiled`);
* :meth:`ColumnarFactTable.rollup_column` — batch roll-up: the ancestor
  of every distinct value at a target category, computed once per code;
* :meth:`ColumnarFactTable.aggregate_rows` — group-by-cell measure
  aggregation folding values in row order (bit-for-bit identical to
  ``Measure.aggregate_over`` on the same member order).

Conversion is zero-copy in the sense that matters: measure values and
:class:`~repro.core.facts.Provenance` objects are shared with the source
MO, never rebuilt, so a round-trip costs only the column bookkeeping.

Only the standard library is required; ``numpy`` is used opportunistically
for the distinct-cell and admission kernels when importable.
"""

from __future__ import annotations

from array import array
from typing import Callable, Iterable, Mapping, Sequence

from ..errors import FactError
from .dimension import Dimension
from .facts import Provenance
from .schema import FactSchema

try:  # pragma: no cover - exercised implicitly on numpy-enabled hosts
    import numpy as _np
except ImportError:  # pragma: no cover - the stdlib fallback is tested
    _np = None


def have_numpy() -> bool:
    """Whether the accelerated (numpy) kernel paths are available."""
    return _np is not None


class ColumnarFactTable:
    """An interned, column-oriented view of an MO's fact set.

    Rows preserve the source MO's fact-iteration (= insertion) order, so
    every fold over a row subset reproduces the member order the row-wise
    engines use — that is what keeps the columnar reducer bit-for-bit
    equal to ``reduce_mo``.
    """

    def __init__(
        self,
        schema: FactSchema,
        dimensions: Mapping[str, Dimension],
    ) -> None:
        self.schema = schema
        self.dimensions = dict(dimensions)
        names = schema.dimension_names
        self.fact_ids: list[str] = []
        self.provenances: list[Provenance] = []
        #: Per-dimension integer code columns (one code per row).
        self.codes: dict[str, array] = {name: array("q") for name in names}
        #: Per-dimension interner: code -> value (append-only).
        self._values: dict[str, list[str]] = {name: [] for name in names}
        self._indexes: dict[str, dict[str, int]] = {name: {} for name in names}
        #: Per-measure value columns (objects shared with the source MO).
        self.measure_columns: dict[str, list[object]] = {
            name: [] for name in schema.measure_names
        }
        self._aggregates = {
            mt.name: mt.aggregate for mt in schema.measure_types
        }
        #: Lazily filled (dimension, category) -> per-code ancestor values.
        self._rollups: dict[tuple[str, str], list[str | None]] = {}

    # ------------------------------------------------------------------
    # Construction and export
    # ------------------------------------------------------------------

    @classmethod
    def from_mo(cls, mo) -> "ColumnarFactTable":
        """Column-encode every fact of *mo* in iteration order."""
        table = cls(mo.schema, mo.dimensions)
        names = mo.schema.dimension_names
        # Same-package fast path: read the relation/measure dicts directly
        # instead of paying a method call per (fact, column) pair.
        encoders = [
            (
                mo.relations[name]._value_of,
                table.codes[name],
                table._values[name],
                table._indexes[name],
            )
            for name in names
        ]
        measure_pairs = [
            (mo.measures[name]._values, table.measure_columns[name])
            for name in mo.schema.measure_names
        ]
        provenances = mo._facts
        fact_ids = table.fact_ids
        fact_ids.extend(provenances)
        table.provenances.extend(provenances.values())
        for value_of, column, values, index in encoders:
            append = column.append
            for fact_id in fact_ids:
                value = value_of[fact_id]
                code = index.get(value)
                if code is None:
                    code = len(values)
                    index[value] = code
                    values.append(value)
                append(code)
        for value_map, column_m in measure_pairs:
            column_m.extend(value_map[fact_id] for fact_id in fact_ids)
        return table

    def extend_codes(self, dimension_name: str, values: Iterable[str]) -> int:
        """Append one interned code per value to a dimension's code column.

        The batch form of the per-fact interning loop in :meth:`from_mo`:
        values are canonical dimension values (callers validate), codes
        are assigned first-seen order.  Cached roll-up columns for the
        dimension are extended in place for any values the interner has
        not seen before, so a warm cache survives appends.
        """
        column = self.codes[dimension_name]
        interner = self._values[dimension_name]
        index = self._indexes[dimension_name]
        append = column.append
        first_new = len(interner)
        appended = 0
        for value in values:
            code = index.get(value)
            if code is None:
                code = len(interner)
                index[value] = code
                interner.append(value)
            append(code)
            appended += 1
        if len(interner) > first_new and self._rollups:
            fresh = interner[first_new:]
            dimension = self.dimensions[dimension_name]
            for (name, category), cached in self._rollups.items():
                if name == dimension_name:
                    cached.extend(
                        dimension.try_ancestor_at(value, category)
                        for value in fresh
                    )
        return appended

    def append_rows(
        self,
        fact_ids: Sequence[str],
        coordinates: Mapping[str, Sequence[str]],
        measures: Mapping[str, Sequence[object]],
        provenances: Sequence[Provenance] | None = None,
    ) -> int:
        """Append a column batch of facts in insertion order.

        *coordinates* and *measures* are column-oriented — one value
        sequence per dimension/measure, every sequence exactly
        ``len(fact_ids)`` long.  Coordinate values must already be
        canonical (the batch buffer validates before flushing); no
        per-fact Python objects are created beyond default provenances.
        Returns the number of rows appended.
        """
        n = len(fact_ids)
        for name in self.schema.dimension_names:
            column = coordinates.get(name)
            if column is None:
                raise FactError(
                    f"append_rows lacks a coordinate column for {name!r}"
                )
            if len(column) != n:
                raise FactError(
                    f"coordinate column {name!r} has {len(column)} values "
                    f"for {n} facts"
                )
        for name in self.schema.measure_names:
            column = measures.get(name)
            if column is None:
                raise FactError(
                    f"append_rows lacks a measure column for {name!r}"
                )
            if len(column) != n:
                raise FactError(
                    f"measure column {name!r} has {len(column)} values "
                    f"for {n} facts"
                )
        if provenances is None:
            provenances = [Provenance.of(fact_id) for fact_id in fact_ids]
        elif len(provenances) != n:
            raise FactError(
                f"append_rows got {len(provenances)} provenances for {n} facts"
            )
        self.fact_ids.extend(fact_ids)
        self.provenances.extend(provenances)
        for name in self.schema.dimension_names:
            self.extend_codes(name, coordinates[name])
        for name in self.schema.measure_names:
            self.measure_columns[name].extend(measures[name])
        return n

    def to_mo(self, template=None):
        """Rebuild a row-wise MO (``template.empty_like()`` shaped, or a
        fresh MO over this table's schema and dimensions)."""
        from .mo import MultidimensionalObject

        if template is not None:
            out = template.empty_like()
        else:
            out = MultidimensionalObject(self.schema, self.dimensions)
        names = self.schema.dimension_names
        measure_names = self.schema.measure_names
        for row in range(len(self.fact_ids)):
            out.insert_aggregate_fact(
                self.fact_ids[row],
                {
                    name: self._values[name][self.codes[name][row]]
                    for name in names
                },
                {
                    name: self.measure_columns[name][row]
                    for name in measure_names
                },
                self.provenances[row],
            )
        return out

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        return len(self.fact_ids)

    def __len__(self) -> int:
        return len(self.fact_ids)

    def values_of(self, dimension_name: str) -> Sequence[str]:
        """The interner of *dimension_name*: distinct values by code."""
        return self._values[dimension_name]

    def decode(self, dimension_name: str, code: int) -> str:
        return self._values[dimension_name][code]

    def row_cell(self, row: int) -> tuple[str, ...]:
        """The direct cell (value tuple) of one row."""
        return tuple(
            self._values[name][self.codes[name][row]]
            for name in self.schema.dimension_names
        )

    def row_measures(self, row: int) -> dict[str, object]:
        return {
            name: self.measure_columns[name][row]
            for name in self.schema.measure_names
        }

    # ------------------------------------------------------------------
    # Batch kernels
    # ------------------------------------------------------------------

    def distinct_cells(
        self,
    ) -> tuple[list[int], list[tuple[int, ...]]]:
        """Deduplicate coordinate rows into distinct code tuples.

        Returns ``(inverse, distinct)``: ``inverse[row]`` indexes into
        ``distinct``, a list of per-dimension code tuples.  The numpy path
        uses ``np.unique(axis=0)``; the fallback interns tuples in a dict.
        The *order* of ``distinct`` is unspecified (callers must not rely
        on it), only the row -> cell mapping is.
        """
        names = self.schema.dimension_names
        if not names:
            return [0] * self.n_rows, [()] if self.n_rows else []
        if _np is not None and self.n_rows:
            matrix = _np.empty((self.n_rows, len(names)), dtype=_np.int64)
            for di, name in enumerate(names):
                matrix[:, di] = _np.frombuffer(self.codes[name], dtype=_np.int64)
            unique, inverse = _np.unique(matrix, axis=0, return_inverse=True)
            return (
                inverse.reshape(-1).tolist(),
                [tuple(row) for row in unique.tolist()],
            )
        seen: dict[tuple[int, ...], int] = {}
        inverse: list[int] = []
        distinct: list[tuple[int, ...]] = []
        columns = [self.codes[name] for name in names]
        for row in range(self.n_rows):
            key = tuple(column[row] for column in columns)
            cell_index = seen.get(key)
            if cell_index is None:
                cell_index = len(distinct)
                seen[key] = cell_index
                distinct.append(key)
            inverse.append(cell_index)
        return inverse, distinct

    def conjunct_mask(
        self,
        distinct: Sequence[tuple[int, ...]],
        dimension_predicates: Mapping[str, Callable[[str], bool]],
    ) -> list[bool]:
        """Batch admission of one conjunct over all distinct cells.

        Each predicate is evaluated once per *distinct value* of its
        dimension (the vectorized per-value verdict cache); verdicts are
        then broadcast over the distinct cells by code.  An empty mapping
        admits everything (an empty conjunct is TRUE).
        """
        if not dimension_predicates:
            return [True] * len(distinct)
        names = self.schema.dimension_names
        per_dimension: list[tuple[int, list[bool]]] = []
        for name, predicate in dimension_predicates.items():
            bits = [predicate(value) for value in self._values[name]]
            per_dimension.append((names.index(name), bits))
        if _np is not None and distinct:
            matrix = _np.asarray(distinct, dtype=_np.int64)
            out = _np.ones(len(distinct), dtype=bool)
            for di, bits in per_dimension:
                out &= _np.asarray(bits, dtype=bool)[matrix[:, di]]
            return out.tolist()
        return [
            all(bits[cell[di]] for di, bits in per_dimension)
            for cell in distinct
        ]

    def rollup_column(
        self, dimension_name: str, category: str
    ) -> list[str | None]:
        """Batch roll-up: ancestor at *category* for every distinct value.

        Indexed by code; ``None`` where the value cannot be characterized
        at *category* (too coarse, or on a parallel branch).  Cached per
        (dimension, category).
        """
        key = (dimension_name, category)
        column = self._rollups.get(key)
        if column is None:
            dimension = self.dimensions[dimension_name]
            column = [
                dimension.try_ancestor_at(value, category)
                for value in self._values[dimension_name]
            ]
            self._rollups[key] = column
        return column

    def category_column(self, dimension_name: str) -> list[str]:
        """The category of every distinct value of *dimension_name*."""
        dimension = self.dimensions[dimension_name]
        return [
            dimension.category_of(value)
            for value in self._values[dimension_name]
        ]

    def aggregate_of(self, measure_name: str):
        """The default :class:`AggregateFunction` of one measure."""
        try:
            return self._aggregates[measure_name]
        except KeyError:
            raise FactError(f"unknown measure {measure_name!r}") from None

    def aggregate_rows(self, measure_name: str, rows: Iterable[int]) -> object:
        """Fold a measure over *rows* with its default aggregate.

        Values fold in the given row order — the same member order the
        row-wise reducers use, so results match ``aggregate_over`` exactly
        (including order-sensitive float folds).
        """
        aggregate = self.aggregate_of(measure_name)
        column = self.measure_columns[measure_name]
        return aggregate(column[row] for row in rows)
