"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A fact schema, dimension type, or hierarchy is malformed."""


class HierarchyError(SchemaError):
    """A category-type hierarchy violates the poset requirements."""


class DimensionError(ReproError):
    """A dimension instance is inconsistent with its dimension type."""


class FactError(ReproError):
    """A fact or fact-dimension relation violates the model's constraints."""


class MeasureError(ReproError):
    """A measure is missing values or uses a non-distributive aggregate."""


class SpecSyntaxError(ReproError):
    """An action specification does not conform to the Table 1 grammar."""

    def __init__(self, message: str, position: int | None = None) -> None:
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class SpecSemanticsError(ReproError):
    """An action specification is syntactically valid but semantically bad.

    Examples: the ``Clist`` does not name exactly one category per dimension,
    or a predicate constrains a category below the action's target category
    (violating ``C_target <= C_pred``).
    """


class NonCrossingViolation(SpecSemanticsError):
    """Two overlapping actions aggregate to crossing granularities."""


class GrowingViolation(SpecSemanticsError):
    """A specification would let a cell's aggregation level decrease."""


class SpecificationUpdateRejected(ReproError):
    """An insert/delete on a reduction specification was refused.

    Per Definitions 3 and 4 of the paper, a rejected update leaves the
    specification unchanged; this exception reports why.
    """


class QueryError(ReproError):
    """A query references unknown dimensions, categories, or measures."""


class EngineError(ReproError):
    """The subcube engine detected an inconsistent store state."""


class StorageError(ReproError):
    """The relational (SQLite) backend failed to persist or load an MO."""


class DurabilityError(ReproError):
    """The durable store engine failed to journal or snapshot state."""


class RecoveryError(DurabilityError):
    """A durable store directory cannot be recovered to a valid state."""


class ServingError(ReproError):
    """The serving layer refused or failed a request (no snapshot
    published yet, deadline exceeded, admission queue full, or the
    refresh circuit breaker is open)."""


class IngestError(ReproError):
    """The streaming ingest path rejected a source row or stream (bad
    row format under the ``reject`` error policy, a malformed source
    file, or a closed/overflowing ingest queue)."""


class ObsError(ReproError):
    """An observability primitive was misused (bad metric name, label, or
    bucket layout) or a metrics snapshot document is malformed."""


class AuditError(ReproError):
    """A store invariant audit (:meth:`SubcubeStore.verify`) failed.

    Carries the individual violations so callers can report them all
    rather than only the first one found.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        count = len(self.violations)
        summary = "; ".join(self.violations[:3])
        if count > 3:
            summary += f"; ... ({count - 3} more)"
        super().__init__(f"store audit failed ({count} violations): {summary}")


class SanitizerError(ReproError):
    """A runtime sanitizer (``REPRO_SANITIZE``) detected an invariant
    violation: a write to a published snapshot, a fork-inherited cache
    that survived the fork-time sweep, or a misconfigured sanitizer
    name."""


class SnapshotMutationError(SanitizerError):
    """The mutation sanitizer caught a write to a frozen, published
    :class:`~repro.serving.snapshots.StoreSnapshot` store."""
